// Package platform assembles the simulated hardware the paper evaluates
// on: the Tuna NVRAM-emulation board (ARM Cortex-A9, 32-byte cache
// lines, adjustable 400–2000 ns NVRAM write latency) and the Nexus 5
// smartphone (Snapdragon 800, 64-byte cache lines, eMMC flash, NVRAM
// emulated in a reserved DRAM range with nop-injected latency).
//
// A Platform wires one virtual clock and one metrics sink through the
// NVRAM device, the Heapo heap manager, the flash block device and the
// EXT4 file system, so experiments read consistent end-to-end virtual
// time. PowerFail/Reboot crash and recover the whole machine.
package platform

import (
	"time"

	"repro/internal/blockdev"
	"repro/internal/ext4"
	"repro/internal/heapo"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Platform is one assembled machine.
type Platform struct {
	Clock   *simclock.Clock
	Metrics *metrics.Counters
	Trace   *trace.Recorder
	NVRAM   *nvram.Device
	Heap    *heapo.Manager
	Flash   *blockdev.Device
	FS      *ext4.FS
}

// Config selects the hardware parameters.
type Config struct {
	NVRAM nvram.Config
	Flash blockdev.Config
	// EnableTrace attaches a block-trace recorder (Figure 8).
	EnableTrace bool
}

// New assembles a platform from explicit hardware parameters.
func New(cfg Config) (*Platform, error) {
	p := &Platform{
		Clock:   simclock.New(),
		Metrics: &metrics.Counters{},
	}
	if cfg.EnableTrace {
		p.Trace = trace.New()
	}
	p.NVRAM = nvram.NewDevice(cfg.NVRAM, p.Clock, p.Metrics)
	h, err := heapo.Format(p.NVRAM)
	if err != nil {
		return nil, err
	}
	p.Heap = h
	p.Flash = blockdev.New(cfg.Flash, p.Clock, p.Metrics, p.Trace)
	p.FS = ext4.New(p.Flash)
	return p, nil
}

// NewTuna builds the Tuna NVRAM-emulation board of §5: 32-byte cache
// lines and the default 500 ns NVRAM write latency used by the ordering
// experiments (adjustable via SetNVRAMLatency for Figure 7).
func NewTuna() (*Platform, error) {
	return New(Config{
		NVRAM: nvram.Config{
			Size:              64 << 20,
			CacheLineSize:     32,
			NVRAMWriteLatency: 500 * time.Nanosecond,
		},
	})
}

// NewNexus5 builds the Nexus 5 of §5.4: 64-byte cache lines, NVRAM
// emulated at a configurable latency, and eMMC flash behind EXT4. The
// paper emulates NVRAM latency there by inserting nop delays after each
// clflush — a mostly serial path — so the simulated controller gets
// only 2 banks (the Tuna board's FPGA DDR3 controller gets 4). Block
// tracing is enabled (Figure 8 runs on this platform).
func NewNexus5() (*Platform, error) {
	return New(Config{
		NVRAM: nvram.Config{
			Size:              64 << 20,
			CacheLineSize:     64,
			NVRAMWriteLatency: 2 * time.Microsecond,
			NVRAMBanks:        2,
		},
		EnableTrace: true,
	})
}

// SetNVRAMLatency adjusts the emulated NVRAM write latency, the
// independent variable of Figures 7 and 9.
func (p *Platform) SetNVRAMLatency(w time.Duration) { p.NVRAM.SetWriteLatency(w) }

// PowerFail crashes the whole machine under the given NVRAM line-
// survival policy: the NVRAM cache hierarchy and the flash write buffer
// lose their volatile contents.
func (p *Platform) PowerFail(policy memsim.FailPolicy, seed int64) {
	p.NVRAM.PowerFail(policy, seed)
	p.FS.PowerFail()
}

// ArmCrash installs a one-shot machine-wide crash trigger that fires
// after afterOps further NVRAM persistence operations (stores, flushes,
// barriers). At the trigger instant the durable state of every device —
// NVRAM under the given fail policy, plus the file system and flash
// device at their last journal commit / cache flush — is frozen as the
// image the next PowerFail restores. Execution continues afterwards; the
// goroutines still running are ghosts of a machine whose power already
// failed, and whatever they persist is discarded. This is how the
// crash-consistency fuzzer injects failures mid-operation without
// having to stop every goroutine at the crash point.
func (p *Platform) ArmCrash(afterOps int64, policy memsim.FailPolicy, seed int64) {
	fs := p.FS
	// The callback runs with the NVRAM domain mutex held; ext4 and
	// blockdev never call back into memsim, so the memsim→fs→dev lock
	// order is acyclic.
	p.NVRAM.Domain().ArmCrash(afterOps, policy, seed, fs.Freeze)
}

// CrashTriggered reports whether an armed crash trigger has fired. An
// operation acknowledged while this still reads false completed before
// the crash instant and must survive the PowerFail.
func (p *Platform) CrashTriggered() bool {
	return p.NVRAM.Domain().CrashTriggered()
}

// DisarmCrash removes an armed trigger and any frozen device images.
func (p *Platform) DisarmCrash() {
	p.NVRAM.Domain().DisarmCrash()
	p.FS.Unfreeze()
}

// OpCount returns the NVRAM persistence-operation counter — the
// coordinate space ArmCrash targets, used to size crash windows.
func (p *Platform) OpCount() int64 {
	return p.NVRAM.Domain().OpCount()
}

// Reboot recovers the machine after PowerFail: the NVRAM domain comes
// back serving persisted content, the heap manager reattaches and
// reclaims pending blocks. The caller re-opens databases afterwards.
func (p *Platform) Reboot() error {
	p.NVRAM.Recover()
	h, err := heapo.Attach(p.NVRAM)
	if err != nil {
		return err
	}
	h.ReclaimPending()
	p.Heap = h
	return nil
}
