package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(3 * time.Microsecond)
	c.Advance(2 * time.Microsecond)
	if got, want := c.Now(), 5*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceIgnoresNonPositive(t *testing.T) {
	c := New()
	c.Advance(time.Microsecond)
	c.Advance(-time.Second)
	c.Advance(0)
	if got, want := c.Now(), time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v (negative/zero advances must be ignored)", got, want)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() after Reset = %v, want 0", got)
	}
}

func TestSince(t *testing.T) {
	c := New()
	c.Advance(10 * time.Millisecond)
	start := c.Now()
	c.Advance(7 * time.Millisecond)
	if got, want := c.Since(start), 7*time.Millisecond; got != want {
		t.Fatalf("Since = %v, want %v", got, want)
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	sw := StartStopwatch(c)
	c.Advance(42 * time.Nanosecond)
	if got, want := sw.Elapsed(), 42*time.Nanosecond; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput(1000, 1s) = %v, want 1000", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput with zero elapsed = %v, want 0", got)
	}
	if got := FormatThroughput(541, time.Second); got != "541" {
		t.Fatalf("FormatThroughput = %q, want 541", got)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), 8000*time.Nanosecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestLaneTracksMaxOfLanes(t *testing.T) {
	parent := New()
	parent.Advance(5 * time.Nanosecond)
	a := parent.NewLane()
	b := parent.NewLane()
	if a.Now() != 5*time.Nanosecond || b.Now() != 5*time.Nanosecond {
		t.Fatalf("lanes must start at parent time: a=%v b=%v", a.Now(), b.Now())
	}
	a.Advance(100 * time.Nanosecond)
	b.Advance(30 * time.Nanosecond)
	if got, want := parent.Now(), 105*time.Nanosecond; got != want {
		t.Fatalf("parent = %v, want max(lanes) = %v", got, want)
	}
	if got, want := b.Now(), 35*time.Nanosecond; got != want {
		t.Fatalf("lane b advanced to %v, want %v (lanes are independent)", got, want)
	}
}

func TestAdvanceToIsMonotoneMax(t *testing.T) {
	c := New()
	c.Advance(50 * time.Nanosecond)
	c.AdvanceTo(20 * time.Nanosecond)
	if got, want := c.Now(), 50*time.Nanosecond; got != want {
		t.Fatalf("AdvanceTo into the past moved the clock: %v, want %v", got, want)
	}
	c.AdvanceTo(80 * time.Nanosecond)
	if got, want := c.Now(), 80*time.Nanosecond; got != want {
		t.Fatalf("AdvanceTo = %v, want %v", got, want)
	}
}

func TestAdvanceToPropagatesToParent(t *testing.T) {
	parent := New()
	lane := parent.NewLane()
	lane.AdvanceTo(time.Microsecond)
	if got, want := parent.Now(), time.Microsecond; got != want {
		t.Fatalf("parent = %v, want %v after lane AdvanceTo", got, want)
	}
}

func TestConcurrentLanes(t *testing.T) {
	parent := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		lane := parent.NewLane()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				lane.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got, want := parent.Now(), 1000*time.Nanosecond; got != want {
		t.Fatalf("parent = %v, want %v (max of equal lanes, not sum)", got, want)
	}
}
