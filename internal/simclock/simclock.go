// Package simclock provides a deterministic virtual clock used by every
// simulated device in this repository.
//
// The paper's evaluation runs on an NVRAM emulation board whose write
// latency is dialed in hardware. We have no such hardware, so instead of
// sleeping, every simulated component *charges* its latency to a shared
// Clock. Throughput numbers are then computed from virtual time, which
// makes every experiment exactly reproducible.
package simclock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is
// ready to use and starts at time zero. All methods are safe for
// concurrent use; the counter is a single atomic word, so every device
// on a hot commit path can charge latency without lock contention.
type Clock struct {
	now atomic.Int64 // nanoseconds of virtual time
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as a duration since the clock's
// origin.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Advance moves the clock forward by d. Negative durations are ignored:
// simulated time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.now.Add(int64(d))
}

// Reset rewinds the clock to zero. Intended for test and benchmark set-up
// only; devices sharing the clock must be reset together.
func (c *Clock) Reset() {
	c.now.Store(0)
}

// Since returns the virtual time elapsed since the given instant.
func (c *Clock) Since(start time.Duration) time.Duration {
	return c.Now() - start
}

// Stopwatch measures a span of virtual time on a clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins measuring virtual time on c.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the virtual time accumulated since the stopwatch
// started.
func (s Stopwatch) Elapsed() time.Duration {
	return s.clock.Now() - s.start
}

// Throughput converts an operation count over a span of virtual time into
// operations per second. It returns 0 for a non-positive elapsed time.
func Throughput(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// FormatThroughput renders a throughput value the way the paper reports
// them (integer transactions per second).
func FormatThroughput(ops int, elapsed time.Duration) string {
	return fmt.Sprintf("%.0f", Throughput(ops, elapsed))
}
