// Package simclock provides a deterministic virtual clock used by every
// simulated device in this repository.
//
// The paper's evaluation runs on an NVRAM emulation board whose write
// latency is dialed in hardware. We have no such hardware, so instead of
// sleeping, every simulated component *charges* its latency to a shared
// Clock. Throughput numbers are then computed from virtual time, which
// makes every experiment exactly reproducible.
package simclock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is
// ready to use and starts at time zero. All methods are safe for
// concurrent use; the counter is a single atomic word, so every device
// on a hot commit path can charge latency without lock contention.
type Clock struct {
	now atomic.Int64 // nanoseconds of virtual time
	// parent, when non-nil, makes this clock a lane of a global clock:
	// each advance pushes the parent forward to at least the lane's own
	// time, so the parent always reads max(lanes) — the wall time of a
	// system whose lanes run on parallel hardware.
	parent *Clock
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// NewLane returns a child clock modelling an independent execution lane
// (one shard's CPU + NVRAM bank set) of this clock. The lane starts at
// the parent's current time and advances independently; the parent is
// pushed to max over all lanes, so Throughput over the parent's elapsed
// time reflects parallel lanes overlapping rather than summing.
func (c *Clock) NewLane() *Clock {
	l := &Clock{parent: c}
	l.now.Store(int64(c.Now()))
	return l
}

// Now returns the current virtual time as a duration since the clock's
// origin.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Advance moves the clock forward by d. Negative durations are ignored:
// simulated time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v := c.now.Add(int64(d))
	if c.parent != nil {
		c.parent.AdvanceTo(time.Duration(v))
	}
}

// AdvanceTo moves the clock forward to at least t (monotone max; a t in
// the past is a no-op). Cross-lane synchronization points — a 2PC
// coordinator waiting on every participant — use it to align lanes.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			if c.parent != nil {
				c.parent.AdvanceTo(t)
			}
			return
		}
	}
}

// Reset rewinds the clock to zero. Intended for test and benchmark set-up
// only; devices sharing the clock must be reset together.
func (c *Clock) Reset() {
	c.now.Store(0)
}

// Since returns the virtual time elapsed since the given instant.
func (c *Clock) Since(start time.Duration) time.Duration {
	return c.Now() - start
}

// Stopwatch measures a span of virtual time on a clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins measuring virtual time on c.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the virtual time accumulated since the stopwatch
// started.
func (s Stopwatch) Elapsed() time.Duration {
	return s.clock.Now() - s.start
}

// Throughput converts an operation count over a span of virtual time into
// operations per second. It returns 0 for a non-positive elapsed time.
func Throughput(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// FormatThroughput renders a throughput value the way the paper reports
// them (integer transactions per second).
func FormatThroughput(ops int, elapsed time.Duration) string {
	return fmt.Sprintf("%.0f", Throughput(ops, elapsed))
}
