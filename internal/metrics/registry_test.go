package metrics

import (
	"testing"
	"time"
)

func TestRegistryPerLabelIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counters("shard0").Inc(Transactions, 3)
	r.Counters("shard1").Inc(Transactions, 5)
	r.Counters("shard1").AddTime(TimeFlush, 7*time.Nanosecond)
	if got := r.Counters("shard0").Count(Transactions); got != 3 {
		t.Fatalf("shard0 transactions = %d, want 3 (labels must not collide)", got)
	}
	if got := r.Snapshot("shard1").Count(Transactions); got != 5 {
		t.Fatalf("shard1 snapshot = %d, want 5", got)
	}
	if got := r.Snapshot("nope").Count(Transactions); got != 0 {
		t.Fatalf("unknown label snapshot = %d, want 0", got)
	}
}

func TestRegistrySameLabelSameSink(t *testing.T) {
	r := NewRegistry()
	if r.Counters("a") != r.Counters("a") {
		t.Fatal("same label must return the same Counters")
	}
}

// TestRegistryAggregateDisjointKeys: shards counting entirely disjoint
// key sets aggregate into a view holding every key at its single
// contributor's value, and no member's snapshot leaks a foreign key.
func TestRegistryAggregateDisjointKeys(t *testing.T) {
	r := NewRegistry()
	r.Counters("shard0").Inc(WALFrames, 7)
	r.Counters("shard0").AddTime(TimeMemcpy, 3*time.Millisecond)
	r.Counters("shard1").Inc(MVCCCommits, 4)
	r.Counters("shard1").Inc(MVCCConflicts, 2)
	r.Counters("shard1").AddTime(TimeBlockIO, 5*time.Millisecond)

	agg := r.Aggregate()
	for key, want := range map[string]int64{WALFrames: 7, MVCCCommits: 4, MVCCConflicts: 2} {
		if got := agg.Count(key); got != want {
			t.Fatalf("aggregate %s = %d, want %d", key, got, want)
		}
	}
	if got := agg.Time(TimeMemcpy); got != 3*time.Millisecond {
		t.Fatalf("aggregate t_memcpy = %v, want 3ms", got)
	}
	if got := agg.Time(TimeBlockIO); got != 5*time.Millisecond {
		t.Fatalf("aggregate t_block_io = %v, want 5ms", got)
	}
	if got := r.Snapshot("shard0").Count(MVCCCommits); got != 0 {
		t.Fatalf("shard0 snapshot leaked shard1's mvcc_commits = %d", got)
	}
	if got := r.Snapshot("shard1").Count(WALFrames); got != 0 {
		t.Fatalf("shard1 snapshot leaked shard0's wal_frames = %d", got)
	}
}

// TestRegistryAggregateOverlappingKeys: shards counting the SAME keys
// sum per key — counters and times both — while each member keeps only
// its own share.
func TestRegistryAggregateOverlappingKeys(t *testing.T) {
	r := NewRegistry()
	for i, label := range []string{"shard0", "shard1", "shard2"} {
		c := r.Counters(label)
		c.Inc(Transactions, int64(i+1))                         // 1+2+3 = 6
		c.Inc(PersistBarrier, 10)                               // 30
		c.AddTime(TimeCPU, time.Duration(i+1)*time.Microsecond) // 6µs
	}
	agg := r.Aggregate()
	if got := agg.Count(Transactions); got != 6 {
		t.Fatalf("aggregate transactions = %d, want 6", got)
	}
	if got := agg.Count(PersistBarrier); got != 30 {
		t.Fatalf("aggregate persist_barrier = %d, want 30", got)
	}
	if got := agg.Time(TimeCPU); got != 6*time.Microsecond {
		t.Fatalf("aggregate t_cpu = %v, want 6µs", got)
	}
	if got := r.Snapshot("shard1").Count(Transactions); got != 2 {
		t.Fatalf("shard1 transactions = %d, want 2", got)
	}
}

func TestRegistryAggregate(t *testing.T) {
	r := NewRegistry()
	r.Counters("shard0").Inc(WALFrames, 10)
	r.Counters("shard1").Inc(WALFrames, 4)
	r.Counters("device").Inc(WALFrames, 1)
	r.Counters("shard0").AddTime(TimePersist, time.Microsecond)
	r.Counters("shard1").AddTime(TimePersist, 2*time.Microsecond)
	agg := r.Aggregate()
	if got := agg.Count(WALFrames); got != 15 {
		t.Fatalf("aggregate wal_frames = %d, want 15", got)
	}
	if got := agg.Time(TimePersist); got != 3*time.Microsecond {
		t.Fatalf("aggregate t_persist = %v, want 3µs", got)
	}
	labels := r.Labels()
	if len(labels) != 3 || labels[0] != "shard0" || labels[2] != "device" {
		t.Fatalf("Labels() = %v, want registration order", labels)
	}
}

// TestRegistryAggregateGrayFailureKeys: the gray-failure counters (node
// health, hedging, quarantine, slow-fault stalls) aggregate across a
// cluster's per-node labels like any other key — a laned cluster's
// fleet-wide view is one Aggregate() away.
func TestRegistryAggregateGrayFailureKeys(t *testing.T) {
	r := NewRegistry()
	n0, n1, rd := r.Counters("n0"), r.Counters("n1"), r.Counters("rd")
	n0.Inc(SlowFaultStalls, 4)
	n0.Inc(SlowFaultStallNs, 4000)
	n0.Inc(ReplicaQuarantines, 1)
	n0.Inc(ReplicaReadmits, 1)
	n0.Inc(HealthDegraded, 2)
	n0.Inc(HealthStalled, 1)
	n0.Inc(DeadlineAborts, 3)
	n0.Inc(ReplReseedAborts, 1)
	n1.Inc(SlowFaultStalls, 6)
	n1.Inc(SlowFaultStallNs, 9000)
	n1.Inc(HealthState, 2)
	rd.Inc(HedgedReads, 5)
	rd.Inc(HedgeWins, 3)
	rd.Inc(BreakerOpen, 2)

	agg := r.Aggregate()
	for key, want := range map[string]int64{
		SlowFaultStalls:    10,
		SlowFaultStallNs:   13000,
		ReplicaQuarantines: 1,
		ReplicaReadmits:    1,
		HealthDegraded:     2,
		HealthStalled:      1,
		HealthState:        2,
		DeadlineAborts:     3,
		ReplReseedAborts:   1,
		HedgedReads:        5,
		HedgeWins:          3,
		BreakerOpen:        2,
	} {
		if got := agg.Count(key); got != want {
			t.Fatalf("aggregate %s = %d, want %d", key, got, want)
		}
	}
	if got := r.Snapshot("n1").Count(HedgedReads); got != 0 {
		t.Fatalf("n1 snapshot leaked the reader's hedged_reads = %d", got)
	}
}
