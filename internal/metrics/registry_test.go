package metrics

import (
	"testing"
	"time"
)

func TestRegistryPerLabelIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counters("shard0").Inc(Transactions, 3)
	r.Counters("shard1").Inc(Transactions, 5)
	r.Counters("shard1").AddTime(TimeFlush, 7*time.Nanosecond)
	if got := r.Counters("shard0").Count(Transactions); got != 3 {
		t.Fatalf("shard0 transactions = %d, want 3 (labels must not collide)", got)
	}
	if got := r.Snapshot("shard1").Count(Transactions); got != 5 {
		t.Fatalf("shard1 snapshot = %d, want 5", got)
	}
	if got := r.Snapshot("nope").Count(Transactions); got != 0 {
		t.Fatalf("unknown label snapshot = %d, want 0", got)
	}
}

func TestRegistrySameLabelSameSink(t *testing.T) {
	r := NewRegistry()
	if r.Counters("a") != r.Counters("a") {
		t.Fatal("same label must return the same Counters")
	}
}

func TestRegistryAggregate(t *testing.T) {
	r := NewRegistry()
	r.Counters("shard0").Inc(WALFrames, 10)
	r.Counters("shard1").Inc(WALFrames, 4)
	r.Counters("device").Inc(WALFrames, 1)
	r.Counters("shard0").AddTime(TimePersist, time.Microsecond)
	r.Counters("shard1").AddTime(TimePersist, 2*time.Microsecond)
	agg := r.Aggregate()
	if got := agg.Count(WALFrames); got != 15 {
		t.Fatalf("aggregate wal_frames = %d, want 15", got)
	}
	if got := agg.Time(TimePersist); got != 3*time.Microsecond {
		t.Fatalf("aggregate t_persist = %v, want 3µs", got)
	}
	labels := r.Labels()
	if len(labels) != 3 || labels[0] != "shard0" || labels[2] != "device" {
		t.Fatalf("Labels() = %v, want registration order", labels)
	}
}
