package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var c Counters
	if got := c.Count(CacheLineFlush); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc(CacheLineFlush, 3)
	if got := c.Count(CacheLineFlush); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

func TestAddTime(t *testing.T) {
	var c Counters
	c.AddTime(TimeFlush, time.Microsecond)
	c.AddTime(TimeFlush, 2*time.Microsecond)
	if got, want := c.Time(TimeFlush), 3*time.Microsecond; got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.Inc(Syscall, 5)
	c.AddTime(TimeSyscall, time.Second)
	c.Reset()
	if c.Count(Syscall) != 0 || c.Time(TimeSyscall) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var c Counters
	c.Inc(WALFrames, 1)
	s := c.Snapshot()
	c.Inc(WALFrames, 10)
	if got := s.Count(WALFrames); got != 1 {
		t.Fatalf("snapshot mutated: %d, want 1", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.Inc(Transactions, 2)
	c.AddTime(TimeCPU, time.Millisecond)
	before := c.Snapshot()
	c.Inc(Transactions, 5)
	c.Inc(Fsync, 1)
	c.AddTime(TimeCPU, 3*time.Millisecond)
	d := c.Snapshot().Sub(before)
	if got := d.Count(Transactions); got != 5 {
		t.Fatalf("delta transactions = %d, want 5", got)
	}
	if got := d.Count(Fsync); got != 1 {
		t.Fatalf("delta fsync = %d, want 1", got)
	}
	if got := d.Time(TimeCPU); got != 3*time.Millisecond {
		t.Fatalf("delta cpu time = %v, want 3ms", got)
	}
}

func TestSnapshotSubMissingKeys(t *testing.T) {
	var a, b Counters
	a.Inc("only_in_earlier", 4)
	b.AddTime("t_only_in_earlier", time.Second)
	d := Snapshot{Counts: map[string]int64{}, Times: map[string]time.Duration{}}.Sub(a.Snapshot())
	if got := d.Count("only_in_earlier"); got != -4 {
		t.Fatalf("missing-key delta = %d, want -4", got)
	}
	d2 := Snapshot{Counts: map[string]int64{}, Times: map[string]time.Duration{}}.Sub(b.Snapshot())
	if got := d2.Time("t_only_in_earlier"); got != -time.Second {
		t.Fatalf("missing-time delta = %v, want -1s", got)
	}
}

func TestString(t *testing.T) {
	var c Counters
	c.Inc(CacheLineFlush, 7)
	c.AddTime(TimeFlush, time.Microsecond)
	s := c.Snapshot().String()
	if !strings.Contains(s, CacheLineFlush) || !strings.Contains(s, "7") {
		t.Fatalf("String() missing counter: %q", s)
	}
	if !strings.Contains(s, TimeFlush) {
		t.Fatalf("String() missing time key: %q", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc(NVRAMBytes, 2)
				c.AddTime(TimeMemcpy, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Count(NVRAMBytes); got != 8000 {
		t.Fatalf("concurrent Inc total = %d, want 8000", got)
	}
	if got := c.Time(TimeMemcpy); got != 4000*time.Nanosecond {
		t.Fatalf("concurrent AddTime total = %v, want 4µs", got)
	}
}
