package metrics

import (
	"sync"
	"time"
)

// Registry is a set of labeled Counters, one per shard (plus any number
// of shared components such as the common NVRAM domain). It exists so N
// engine shards can each count heap_*/pressure_*/checkpoint_* traffic
// into their own sink without colliding, while the bench and the
// sharded front-end read one Aggregate() view.
//
// The zero value is ready to use. All methods are safe for concurrent
// use.
type Registry struct {
	mu      sync.Mutex
	order   []string
	members map[string]*Counters
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counters returns the counter sink registered under label, creating it
// on first use. Repeated calls with the same label return the same
// *Counters.
func (r *Registry) Counters(label string) *Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members == nil {
		r.members = make(map[string]*Counters)
	}
	c, ok := r.members[label]
	if !ok {
		c = &Counters{}
		r.members[label] = c
		r.order = append(r.order, label)
	}
	return c
}

// Labels returns the registered labels in registration order.
func (r *Registry) Labels() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Snapshot returns a point-in-time copy of one member's counters (an
// empty snapshot for an unknown label).
func (r *Registry) Snapshot(label string) Snapshot {
	r.mu.Lock()
	c := r.members[label]
	r.mu.Unlock()
	if c == nil {
		return Snapshot{Counts: map[string]int64{}, Times: map[string]time.Duration{}}
	}
	return c.Snapshot()
}

// Aggregate sums every member's counters and times into one snapshot —
// the whole-system view a single-engine deployment would have reported.
func (r *Registry) Aggregate() Snapshot {
	r.mu.Lock()
	members := make([]*Counters, 0, len(r.order))
	for _, label := range r.order {
		members = append(members, r.members[label])
	}
	r.mu.Unlock()
	agg := Snapshot{Counts: make(map[string]int64), Times: make(map[string]time.Duration)}
	for _, c := range members {
		s := c.Snapshot()
		for k, v := range s.Counts {
			agg.Counts[k] += v
		}
		for k, v := range s.Times {
			agg.Times[k] += v
		}
	}
	return agg
}
