// Package metrics collects the operation counts and per-phase virtual
// time that the paper's tables and figures report: cache-line flushes,
// memory barriers, persist barriers, bytes written to NVRAM, syscall
// counts, and time attributed to memcpy versus synchronization.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counters aggregates event counts and attributed virtual time for one
// simulated component or one experiment run. The zero value is ready to
// use. All methods are safe for concurrent use.
type Counters struct {
	mu     sync.Mutex
	counts map[string]int64
	times  map[string]time.Duration
}

// Standard counter keys used across the repository. Using shared names
// keeps the bench harness free of per-package string knowledge.
const (
	CacheLineFlush  = "cache_line_flush"  // dccmvac invocations
	MemoryBarrier   = "dmb"               // data memory barriers
	PersistBarrier  = "persist_barrier"   // pcommit-style barriers
	NVRAMBytes      = "nvram_bytes"       // bytes persisted to NVRAM cells
	NVRAMLineWrites = "nvram_line_writes" // cache lines written back to NVRAM
	Syscall         = "syscall"           // kernel-mode switches
	HeapAlloc       = "heap_alloc"        // kernel heap allocations (nvmalloc / nv_pre_malloc)
	HeapFree        = "heap_free"         // kernel heap frees
	BlockRead       = "block_read"        // block device page reads
	BlockWrite      = "block_write"       // block device page writes
	Fsync           = "fsync"             // block device flushes
	JournalWrite    = "journal_write"     // EXT4 journal block writes
	WALFrames       = "wal_frames"        // log frames appended
	Transactions    = "transactions"      // committed transactions
	GroupCommits    = "group_commits"     // batched group-commit flushes
	Checkpoints     = "checkpoints"       // checkpoint rounds
	// Checkpoint observability (wall-clock, not virtual: the stall a
	// real thread would experience is what the non-blocking checkpoint
	// removes, and the virtual clock does not advance while a goroutine
	// merely waits on a lock).
	CheckpointNanos  = "checkpoint_ns_total"      // wall ns spent writing back + syncing pages
	CheckpointPages  = "checkpoint_pages_written" // pages copied into the database file
	CommitStallNanos = "commit_stall_ns"          // wall ns commits waited for the journal writer lock
	HeapRecycled     = "heap_recycled"            // blocks parked in the recycled free-block pool
	HeapRecycleHits  = "heap_recycle_hits"        // allocations served from the pool (no kernel call)
	// Media-fault hardening (fault injection, salvage, scrubbing).
	MediaBitFlips      = "media_bit_flips"      // NVRAM lines corrupted by injected bit rot
	MediaStuckLines    = "media_stuck_lines"    // NVRAM lines stuck at stale content
	MediaReadErrors    = "media_read_errors"    // uncorrectable NVRAM read errors surfaced
	BlockTornWrites    = "block_torn_writes"    // sector writes torn by power failure
	BlockShortWrites   = "block_short_writes"   // silently truncated sector programs
	BlockIOErrors      = "block_io_errors"      // EIO returned by the block device
	IORetries          = "io_retries"           // transient I/O errors absorbed by retry
	ScrubFramesChecked = "scrub_frames_checked" // log frames CRC-verified by the scrubber
	ScrubFramesBad     = "scrub_frames_bad"     // committed frames the scrubber found corrupt
	FramesSalvaged     = "frames_salvaged"      // committed frames recovery kept from a damaged log
	FramesDropped      = "frames_dropped"       // frames recovery discarded as corrupt/unreachable
	BlocksQuarantined  = "blocks_quarantined"   // NVRAM blocks retired to the heap quarantine
	// NVRAM-space exhaustion (reservations, watermark backpressure).
	HeapReservations  = "heap_reservations"   // commit-time block reservations granted
	HeapReserveDenied = "heap_reserve_denied" // reservations refused up front (admission)
	PressureStalls    = "pressure_stalls"     // writers stalled by the space watermarks / log-full retry
	PressureStallNs   = "pressure_stall_ns"   // virtual ns spent stalled under backpressure
	UrgentCheckpoints = "urgent_checkpoints"  // checkpoint rounds forced by space pressure
	CommitTimeouts    = "commit_timeouts"     // backpressure stalls abandoned at their deadline
	// Multi-writer MVCC (per-writer streams, first-committer-wins).
	MVCCCommits   = "mvcc_commits"   // MVCC session transactions committed
	MVCCConflicts = "mvcc_conflicts" // MVCC commits rejected by page-version validation
	// Simulated network (netsim fault injection).
	NetMessages  = "net_messages"  // messages handed to the wire
	NetBytes     = "net_bytes"     // payload bytes handed to the wire
	NetDropped   = "net_dropped"   // messages lost to drops, partitions or isolation
	NetReordered = "net_reordered" // messages delivered out of order
	NetCuts      = "net_cuts"      // connections cut mid-message
	// Serving layer (wire protocol front-end).
	ServerRequests = "server_requests" // requests executed (all verbs)
	ServerShed     = "server_shed"     // writes refused with retry advice (admission/backpressure)
	ServerFenced   = "server_fenced"   // requests rejected by epoch fencing
	ClientRetries  = "client_retries"  // client-side retry attempts (backoff path)
	// Replication (log-shipping primary + replicas).
	ReplBatchesShipped = "repl_batches_shipped" // frame ranges shipped to replicas
	ReplFramesShipped  = "repl_frames_shipped"  // frames shipped to replicas
	ReplBytesShipped   = "repl_bytes_shipped"   // payload bytes shipped to replicas
	ReplBatchesApplied = "repl_batches_applied" // frame ranges applied by a replica
	ReplAcks           = "repl_acks"            // replica acks processed by the primary
	ReplReseeds        = "repl_reseeds"         // full-snapshot re-seeds (gap, divergence, incarnation)
	ReplDivergences    = "repl_divergences"     // chain mismatches latching a replica degraded
	ReplAckWaits       = "repl_ack_waits"       // commits that waited on a replica ack quorum
	// Gray-failure resilience (slow faults, health watchdogs, hedging).
	SlowFaultStalls    = "slow_fault_stalls"   // injected slow-fault delays (all layers)
	SlowFaultStallNs   = "slow_fault_stall_ns" // virtual ns of injected slow-fault delay
	HealthState        = "health_state"        // per-component gauge: 0 ok, 1 degraded, 2 stalled
	HealthDegraded     = "health_degraded"     // ok->degraded transitions observed
	HealthStalled      = "health_stalled"      // ->stalled transitions observed
	ReplReseedAborts   = "repl_reseed_aborts"
	HedgedReads        = "hedged_reads"               // reads duplicated to a second backend
	HedgeWins          = "hedge_wins"                 // hedged reads answered first by the hedge
	BreakerOpen        = "breaker_open_total"         // circuit-breaker open transitions
	ReplicaQuarantines = "replica_quarantines"        // replicas dropped to async for slow acks
	ReplicaReadmits    = "replica_readmits"           // quarantined replicas re-admitted to the quorum
	DeadlineAborts     = "deadline_propagated_aborts" // ops aborted by a client-propagated deadline
)

// Standard time keys.
const (
	TimeMemcpy    = "t_memcpy"     // copying log payloads into NVRAM space
	TimeFlush     = "t_flush"      // dccmvac cache-line flushes
	TimeBarrier   = "t_dmb"        // dmb barriers
	TimePersist   = "t_persist"    // persist barriers
	TimeSyscall   = "t_syscall"    // kernel mode switch overhead
	TimeBlockIO   = "t_block_io"   // block device reads/writes/fsync
	TimeCPU       = "t_cpu"        // query processing CPU cost
	TimeTotalTxn  = "t_total_txn"  // end-to-end transaction time
	TimeCheckpnt  = "t_checkpoint" // checkpointing time
	TimeHeapAlloc = "t_heap_alloc" // kernel heap manager time
)

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += delta
	c.mu.Unlock()
}

// AddTime attributes a span of virtual time to the named phase.
func (c *Counters) AddTime(name string, d time.Duration) {
	c.mu.Lock()
	if c.times == nil {
		c.times = make(map[string]time.Duration)
	}
	c.times[name] += d
	c.mu.Unlock()
}

// Count returns the current value of the named counter.
func (c *Counters) Count(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Time returns the virtual time attributed to the named phase.
func (c *Counters) Time(name string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.times[name]
}

// Reset clears all counters and times.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.counts = nil
	c.times = nil
	c.mu.Unlock()
}

// Snapshot returns a point-in-time copy of all counters and times.
func (c *Counters) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Counts: make(map[string]int64, len(c.counts)),
		Times:  make(map[string]time.Duration, len(c.times)),
	}
	for k, v := range c.counts {
		s.Counts[k] = v
	}
	for k, v := range c.times {
		s.Times[k] = v
	}
	return s
}

// Snapshot is an immutable copy of a Counters value.
type Snapshot struct {
	Counts map[string]int64
	Times  map[string]time.Duration
}

// Sub returns the delta s - earlier, counter by counter. Keys absent from
// either side are treated as zero.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	d := Snapshot{
		Counts: make(map[string]int64),
		Times:  make(map[string]time.Duration),
	}
	for k, v := range s.Counts {
		if dv := v - earlier.Counts[k]; dv != 0 {
			d.Counts[k] = dv
		}
	}
	for k, v := range earlier.Counts {
		if _, ok := s.Counts[k]; !ok && v != 0 {
			d.Counts[k] = -v
		}
	}
	for k, v := range s.Times {
		if dv := v - earlier.Times[k]; dv != 0 {
			d.Times[k] = dv
		}
	}
	for k, v := range earlier.Times {
		if _, ok := s.Times[k]; !ok && v != 0 {
			d.Times[k] = -v
		}
	}
	return d
}

// Count returns the named counter from the snapshot (zero if absent).
func (s Snapshot) Count(name string) int64 { return s.Counts[name] }

// Time returns the named time from the snapshot (zero if absent).
func (s Snapshot) Time(name string) time.Duration { return s.Times[name] }

// String renders the snapshot sorted by key, one entry per line, for
// debugging and experiment logs.
func (s Snapshot) String() string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Counts))
	for k := range s.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-20s %d\n", k, s.Counts[k])
	}
	keys = keys[:0]
	for k := range s.Times {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-20s %v\n", k, s.Times[k])
	}
	return b.String()
}
