// Package pager implements the DRAM page cache between the B+tree and
// the persistence layers, the role SQLite's pager plays in Figure 1: in
// a transaction, copies of database pages are modified in volatile
// memory; at commit the set of dirty pages is handed to the write-ahead
// log (file WAL or NVWAL); reads are served from the cache, then the
// log's latest committed version, then the database file.
package pager

import (
	"errors"
	"fmt"
	"sort"
)

// Frame is one dirty page handed to the journal at commit: the page
// number and its full new image. The journal decides whether to log the
// full image or a byte-granularity differential against the version it
// already holds (§3.2).
type Frame struct {
	Pgno uint32
	Data []byte
}

// Journal is the write-ahead log abstraction both the stock/optimized
// file WAL and NVWAL implement.
type Journal interface {
	// CommitTransaction durably logs the transaction's dirty pages and
	// its commit mark.
	CommitTransaction(frames []Frame) error
	// PageVersion returns the latest committed image of pgno held in the
	// log, or ok=false when the log has no frame for the page.
	PageVersion(pgno uint32) ([]byte, bool)
	// FramesSinceCheckpoint reports the number of logged frames, the
	// trigger SQLite compares against its 1000-frame checkpoint limit.
	FramesSinceCheckpoint() int
	// Checkpoint writes all committed pages back to the database file
	// and truncates the log.
	Checkpoint() error
}

// GroupJournal is implemented by journals that can persist several
// transactions' frame sets under a single commit mark — the group
// commit enabled by Algorithm 1's commit flag: every transaction's
// frames are logged, but only the final frame carries the commit mark,
// so one flush batch and one persist barrier cover the whole group.
// Atomicity coarsens to the group: a crash loses the entire in-flight
// group, never a prefix of it.
type GroupJournal interface {
	Journal
	// CommitGroup durably logs every group's frames as one atomic unit.
	// Later groups override earlier ones on the same page.
	CommitGroup(groups [][]Frame) error
}

// Coalescer flattens group commits' per-transaction frame sets, reusing
// its map and output slice across calls so the steady-state coalescing
// path allocates nothing. A Coalescer is not safe for concurrent use;
// journals embed one and call it under their writer lock.
type Coalescer struct {
	latest map[uint32][]byte
	out    []Frame
}

// Coalesce merges the groups into one frame list holding a single image
// per page, ordered by page number. Because the group persists
// atomically under one commit mark, intermediate page versions are
// never visible to recovery — only each page's final image needs
// logging, and later groups override earlier ones. The returned slice
// is owned by the Coalescer and only valid until the next call.
func (c *Coalescer) Coalesce(groups [][]Frame) []Frame {
	if c.latest == nil {
		c.latest = make(map[uint32][]byte)
	}
	clear(c.latest)
	for _, frames := range groups {
		for _, fr := range frames {
			c.latest[fr.Pgno] = fr.Data
		}
	}
	c.out = c.out[:0]
	for pgno, data := range c.latest {
		c.out = append(c.out, Frame{Pgno: pgno, Data: data})
	}
	sortFrames(c.out)
	return c.out
}

// CoalesceGroups is the one-shot form of Coalescer.Coalesce, for callers
// without a commit loop to amortize the scratch across.
func CoalesceGroups(groups [][]Frame) []Frame {
	return new(Coalescer).Coalesce(groups)
}

// SnapshotJournal is implemented by journals that can serve point-in-
// time reads — the WAL property that lets readers proceed against a
// stable snapshot while the writer appends (SQLite's wal-index "mxFrame"
// mechanism). Marks are only valid within the current checkpoint epoch;
// the database layer keeps checkpointing and open snapshots apart.
type SnapshotJournal interface {
	Journal
	// Mark captures the current end of the committed log.
	Mark() int
	// PageVersionAt returns pgno's image as of the mark, or ok=false
	// when the log held no frame for the page at that point (the page's
	// content is then whatever the database file holds — unchanged
	// since the mark, because checkpointing is excluded).
	PageVersionAt(pgno uint32, mark int) ([]byte, bool)
}

// ErrCheckpointPending is returned by IncrementalJournal implementations
// when the caller's gate refused the checkpoint (an open snapshot reader
// still holds a mark below the backfill watermark). The log is intact;
// retry once the reader closes.
var ErrCheckpointPending = errors.New("pager: checkpoint pending: a snapshot reader pins the log")

// IncrementalJournal is implemented by journals whose checkpoint follows
// the backfill-watermark protocol: page writeback and fsync run outside
// the journal's writer lock, commits keep appending concurrently, and
// frames logged during the writeback carry over to the next round
// (SQLite's nBackfill). The gate decides — without any journal lock
// held — whether a checkpoint covering marks < watermark may proceed; it
// must return false while any open snapshot reader holds a mark below
// the watermark. A nil gate always allows.
type IncrementalJournal interface {
	Journal
	CheckpointIncremental(gate func(watermark int) bool) error
}

// PageVersionInto is the copy-into-caller-buffer variant of
// Journal.PageVersion: journals that can serve the latest committed
// image without an intermediate allocation implement it, and the pager
// prefers it on the read path.
type PageVersionInto interface {
	PageVersionInto(pgno uint32, buf []byte) bool
}

// DBFile is the database file on block storage that checkpointing
// writes into and cache misses read from.
type DBFile interface {
	PageSize() int
	// ReadPage fills buf with the page's content, zero-filled when the
	// page lies beyond the file's current size.
	ReadPage(pgno uint32, buf []byte) error
	WritePage(pgno uint32, data []byte) error
	Sync() error
}

// Database header layout within page 1.
const (
	hdrMagicOff     = 0
	hdrPageCountOff = 12
	// Freed pages form a chain (each free page's first 4 bytes hold the
	// next free page number); the header tracks its head and length,
	// like SQLite's freelist trunk.
	hdrFreeHeadOff  = 16
	hdrFreeCountOff = 20
	// HeaderReserved is the portion of page 1 owned by the pager; the
	// database catalog uses the rest.
	HeaderReserved = 64
)

var headerMagic = []byte("NVWALDB1")

// ErrNoTxn is returned for write operations outside a transaction.
var ErrNoTxn = errors.New("pager: no transaction in progress")

// Pager is the page cache. It implements btree.PageStore.
type Pager struct {
	pageSize int
	db       DBFile
	jrn      Journal
	// jrnInto caches the journal's optional copy-into capability so Get
	// avoids a per-miss interface assertion.
	jrnInto PageVersionInto

	cache map[uint32][]byte
	dirty map[uint32]bool
	// fresh marks pages allocated in the current transaction (they have
	// no committed pre-image to restore on rollback).
	fresh map[uint32]bool
	orig  map[uint32][]byte
	inTxn bool
	// frameScratch backs PrepareCommit's frame list, reused across
	// transactions: both commit paths consume the frames (journal write
	// or deep clone) before the writer slot is released, so the slice is
	// free again by the time the next transaction prepares.
	frameScratch []Frame
	// allocBase, when set, arbitrates database extension against an
	// external page-number allocator (MVCC sessions allocating outside
	// any pager transaction). It receives the current page count and
	// returns the page number to extend with — always > every number
	// the external allocator has handed out, so the two can never
	// collide.
	allocBase func(pageCount uint32) uint32
}

// Open attaches a pager to the database file and journal. A fresh
// database gets its header initialized in memory; the caller commits it
// with the first transaction.
func Open(db DBFile, jrn Journal) (*Pager, error) {
	p := &Pager{
		pageSize: db.PageSize(),
		db:       db,
		jrn:      jrn,
		cache:    make(map[uint32][]byte),
		dirty:    make(map[uint32]bool),
		fresh:    make(map[uint32]bool),
		orig:     make(map[uint32][]byte),
	}
	p.jrnInto, _ = jrn.(PageVersionInto)
	hdr, err := p.Get(1)
	if err != nil {
		return nil, err
	}
	if string(hdr[hdrMagicOff:hdrMagicOff+8]) != string(headerMagic) {
		if !isZero(hdr) {
			return nil, fmt.Errorf("pager: page 1 is neither empty nor a database header")
		}
		// Fresh database: initialize the header under an implicit
		// transaction so it reaches the journal durably.
		p.Begin()
		p.MarkDirty(1)
		copy(hdr[hdrMagicOff:], headerMagic)
		p.setPageCount(hdr, 1)
		if err := p.Commit(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// PageSize implements btree.PageStore.
func (p *Pager) PageSize() int { return p.pageSize }

// PageCount reports the number of pages in the database (including the
// header page).
func (p *Pager) PageCount() (uint32, error) {
	hdr, err := p.Get(1)
	if err != nil {
		return 0, err
	}
	return uint32(hdr[hdrPageCountOff]) | uint32(hdr[hdrPageCountOff+1])<<8 |
		uint32(hdr[hdrPageCountOff+2])<<16 | uint32(hdr[hdrPageCountOff+3])<<24, nil
}

func (p *Pager) setPageCount(hdr []byte, n uint32) {
	hdr[hdrPageCountOff] = byte(n)
	hdr[hdrPageCountOff+1] = byte(n >> 8)
	hdr[hdrPageCountOff+2] = byte(n >> 16)
	hdr[hdrPageCountOff+3] = byte(n >> 24)
}

// Get implements btree.PageStore: cache, then journal, then database
// file.
func (p *Pager) Get(pgno uint32) ([]byte, error) {
	if pgno == 0 {
		return nil, fmt.Errorf("pager: page numbers start at 1")
	}
	if buf, ok := p.cache[pgno]; ok {
		return buf, nil
	}
	buf := make([]byte, p.pageSize)
	switch {
	case p.jrnInto != nil:
		// One copy, journal version straight into the cache buffer.
		if !p.jrnInto.PageVersionInto(pgno, buf) {
			if err := p.db.ReadPage(pgno, buf); err != nil {
				return nil, err
			}
		}
	default:
		if v, ok := p.jrn.PageVersion(pgno); ok {
			copy(buf, v)
		} else if err := p.db.ReadPage(pgno, buf); err != nil {
			return nil, err
		}
	}
	p.cache[pgno] = buf
	return buf, nil
}

// Allocate implements btree.PageStore: pops a page from the freelist,
// or extends the database by one zeroed page. The header page is
// dirtied alongside, so the allocation commits atomically with the
// transaction.
func (p *Pager) Allocate() (uint32, []byte, error) {
	if !p.inTxn {
		return 0, nil, ErrNoTxn
	}
	hdr, err := p.Get(1)
	if err != nil {
		return 0, nil, err
	}
	p.MarkDirty(1)
	if head := getU32(hdr, hdrFreeHeadOff); head != 0 {
		buf, err := p.Get(head)
		if err != nil {
			return 0, nil, err
		}
		p.MarkDirty(head)
		putU32(hdr, hdrFreeHeadOff, getU32(buf, 0))
		putU32(hdr, hdrFreeCountOff, getU32(hdr, hdrFreeCountOff)-1)
		for i := range buf {
			buf[i] = 0
		}
		return head, buf, nil
	}
	n, err := p.PageCount()
	if err != nil {
		return 0, nil, err
	}
	pgno := n + 1
	if p.allocBase != nil {
		pgno = p.allocBase(n)
	}
	p.setPageCount(hdr, pgno)
	buf := make([]byte, p.pageSize)
	p.cache[pgno] = buf
	p.dirty[pgno] = true
	p.fresh[pgno] = true
	return pgno, buf, nil
}

// Free implements btree.PageStore: returns a page to the freelist. The
// page's content is overwritten with the chain link; the change commits
// (or rolls back) with the enclosing transaction.
func (p *Pager) Free(pgno uint32) error {
	if !p.inTxn {
		return ErrNoTxn
	}
	if pgno <= 1 {
		return fmt.Errorf("pager: cannot free page %d", pgno)
	}
	hdr, err := p.Get(1)
	if err != nil {
		return err
	}
	buf, err := p.Get(pgno)
	if err != nil {
		return err
	}
	p.MarkDirty(1)
	p.MarkDirty(pgno)
	putU32(buf, 0, getU32(hdr, hdrFreeHeadOff))
	putU32(hdr, hdrFreeHeadOff, pgno)
	putU32(hdr, hdrFreeCountOff, getU32(hdr, hdrFreeCountOff)+1)
	return nil
}

// FreePageCount reports the freelist length.
func (p *Pager) FreePageCount() (uint32, error) {
	hdr, err := p.Get(1)
	if err != nil {
		return 0, err
	}
	return getU32(hdr, hdrFreeCountOff), nil
}

func getU32(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

func putU32(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

// MarkDirty implements btree.PageStore: snapshots the committed
// pre-image the first time a page is dirtied in a transaction, so
// Rollback can restore it.
func (p *Pager) MarkDirty(pgno uint32) {
	if !p.inTxn {
		panic("pager: MarkDirty outside a transaction")
	}
	if p.dirty[pgno] {
		return
	}
	p.dirty[pgno] = true
	if buf, ok := p.cache[pgno]; ok {
		pre := make([]byte, len(buf))
		copy(pre, buf)
		p.orig[pgno] = pre
	}
}

// Begin starts a write transaction. SQLite is serverless and allows a
// single writer (§4.1), so nested transactions are a programming error.
func (p *Pager) Begin() {
	if p.inTxn {
		panic("pager: nested transaction")
	}
	p.inTxn = true
}

// InTransaction reports whether a write transaction is open.
func (p *Pager) InTransaction() bool { return p.inTxn }

// PrepareCommit collects the transaction's dirty pages as journal
// frames without ending the transaction. The caller either hands the
// frames to the journal itself (deferring durability, as group commit
// does) and then calls FinishCommit, or calls Rollback to abandon the
// transaction — the pre-images are still intact.
func (p *Pager) PrepareCommit() ([]Frame, error) {
	if !p.inTxn {
		return nil, ErrNoTxn
	}
	frames := p.frameScratch[:0]
	for pgno := range p.dirty {
		frames = append(frames, Frame{Pgno: pgno, Data: p.cache[pgno]})
	}
	// Deterministic frame order keeps experiments reproducible.
	sortFrames(frames)
	p.frameScratch = frames
	return frames, nil
}

// FinishCommit ends the transaction after its frames have been handed
// off, discarding the rollback pre-images.
func (p *Pager) FinishCommit() {
	if !p.inTxn {
		return
	}
	p.endTxn()
}

// Commit hands all dirty pages to the journal and ends the transaction.
// A journal failure rolls the transaction back — every dirtied page is
// restored to its committed pre-image — so the failed transaction's
// dirty set can never leak into the next one.
func (p *Pager) Commit() error {
	frames, err := p.PrepareCommit()
	if err != nil {
		return err
	}
	if len(frames) > 0 {
		if err := p.jrn.CommitTransaction(frames); err != nil {
			p.Rollback()
			return fmt.Errorf("pager: commit failed, transaction rolled back: %w", err)
		}
	}
	p.endTxn()
	return nil
}

// Rollback restores every dirtied page to its committed pre-image and
// drops pages allocated by the transaction.
func (p *Pager) Rollback() {
	if !p.inTxn {
		return
	}
	for pgno := range p.dirty {
		if p.fresh[pgno] {
			delete(p.cache, pgno)
			continue
		}
		if pre, ok := p.orig[pgno]; ok {
			copy(p.cache[pgno], pre)
		} else {
			delete(p.cache, pgno)
		}
	}
	p.endTxn()
}

func (p *Pager) endTxn() {
	clear(p.dirty)
	clear(p.fresh)
	clear(p.orig)
	p.inTxn = false
}

// SetJournal swaps the journal the pager commits through. It exists so
// fault-injection harnesses can wrap the journal with a failing stub;
// swapping mid-transaction is a programming error.
func (p *Pager) SetJournal(jrn Journal) {
	if p.inTxn {
		panic("pager: SetJournal inside a transaction")
	}
	p.jrn = jrn
	p.jrnInto, _ = jrn.(PageVersionInto)
}

// Journal returns the journal the pager currently commits through
// (the one SetJournal last installed). Callers that flush prepared
// frames themselves — group commit, backpressure retry — go through it
// so journal wrappers installed by fault harnesses stay effective.
func (p *Pager) Journal() Journal { return p.jrn }

// SetAllocBase installs the external page-number arbiter consulted by
// Allocate when extending the database (see the field doc). Installing
// it mid-transaction is a programming error.
func (p *Pager) SetAllocBase(fn func(pageCount uint32) uint32) {
	if p.inTxn {
		panic("pager: SetAllocBase inside a transaction")
	}
	p.allocBase = fn
}

// Install publishes a committed page image into the shared cache
// without a pager transaction. MVCC session commits use it: their
// frames bypass Begin/PrepareCommit, but later writers and reads must
// see the new images. The data is copied — in place when the page is
// already cached, so existing references stay valid. Callers must hold
// the writer slot; calling inside a pager transaction is a programming
// error.
func (p *Pager) Install(pgno uint32, data []byte) {
	if p.inTxn {
		panic("pager: Install inside a transaction")
	}
	buf, ok := p.cache[pgno]
	if !ok {
		buf = make([]byte, p.pageSize)
		p.cache[pgno] = buf
	}
	copy(buf, data)
}

// Evict drops one page from the shared cache (the MVCC commit path
// uses it for pages it freed: their next read must come from the
// journal, not a stale cached image). Illegal mid-transaction.
func (p *Pager) Evict(pgno uint32) {
	if p.inTxn {
		panic("pager: Evict inside a transaction")
	}
	delete(p.cache, pgno)
}

// Header-field accessors for page-1 images held outside the pager (the
// MVCC commit path reconciles the header against its snapshot copy).
func HeaderPageCount(hdr []byte) uint32       { return getU32(hdr, hdrPageCountOff) }
func SetHeaderPageCount(hdr []byte, n uint32) { putU32(hdr, hdrPageCountOff, n) }
func HeaderFreeHead(hdr []byte) uint32        { return getU32(hdr, hdrFreeHeadOff) }
func SetHeaderFreeHead(hdr []byte, n uint32)  { putU32(hdr, hdrFreeHeadOff, n) }
func HeaderFreeCount(hdr []byte) uint32       { return getU32(hdr, hdrFreeCountOff) }
func SetHeaderFreeCount(hdr []byte, n uint32) { putU32(hdr, hdrFreeCountOff, n) }

// FreelistLink reads / writes a freelist page's next-page link word.
func FreelistLink(buf []byte) uint32          { return getU32(buf, 0) }
func SetFreelistLink(buf []byte, next uint32) { putU32(buf, 0, next) }

// DropCache empties the page cache (after recovery, or to simulate a
// cold start). Illegal mid-transaction.
func (p *Pager) DropCache() {
	if p.inTxn {
		panic("pager: DropCache inside a transaction")
	}
	p.cache = make(map[uint32][]byte)
}

// DirtyPages reports the number of pages dirtied so far in the open
// transaction.
func (p *Pager) DirtyPages() int { return len(p.dirty) }

func sortFrames(frames []Frame) {
	sort.Slice(frames, func(i, j int) bool { return frames[i].Pgno < frames[j].Pgno })
}
