package pager

import (
	"bytes"
	"errors"
	"testing"
)

// fakeJournal is an in-memory Journal recording commits.
type fakeJournal struct {
	versions map[uint32][]byte
	commits  int
	failNext bool
}

func newFakeJournal() *fakeJournal {
	return &fakeJournal{versions: make(map[uint32][]byte)}
}

func (j *fakeJournal) CommitTransaction(frames []Frame) error {
	if j.failNext {
		j.failNext = false
		return errors.New("injected commit failure")
	}
	for _, fr := range frames {
		img := make([]byte, len(fr.Data))
		copy(img, fr.Data)
		j.versions[fr.Pgno] = img
	}
	j.commits++
	return nil
}

func (j *fakeJournal) PageVersion(pgno uint32) ([]byte, bool) {
	v, ok := j.versions[pgno]
	return v, ok
}

func (j *fakeJournal) FramesSinceCheckpoint() int { return len(j.versions) }

func (j *fakeJournal) Checkpoint() error { return nil }

// fakeDBFile is an in-memory DBFile.
type fakeDBFile struct {
	pages map[uint32][]byte
}

func newFakeDBFile() *fakeDBFile { return &fakeDBFile{pages: make(map[uint32][]byte)} }

func (f *fakeDBFile) PageSize() int { return 4096 }

func (f *fakeDBFile) ReadPage(pgno uint32, buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	if p, ok := f.pages[pgno]; ok {
		copy(buf, p)
	}
	return nil
}

func (f *fakeDBFile) WritePage(pgno uint32, data []byte) error {
	img := make([]byte, len(data))
	copy(img, data)
	f.pages[pgno] = img
	return nil
}

func (f *fakeDBFile) Sync() error { return nil }

func newPager(t testing.TB) (*Pager, *fakeJournal, *fakeDBFile) {
	t.Helper()
	j, f := newFakeJournal(), newFakeDBFile()
	p, err := Open(f, j)
	if err != nil {
		t.Fatal(err)
	}
	return p, j, f
}

func TestOpenInitializesHeader(t *testing.T) {
	p, j, _ := newPager(t)
	n, err := p.PageCount()
	if err != nil || n != 1 {
		t.Fatalf("PageCount = (%d,%v), want 1", n, err)
	}
	if j.commits != 1 {
		t.Fatalf("header initialization committed %d times, want 1", j.commits)
	}
}

func TestOpenExistingHeader(t *testing.T) {
	j, f := newFakeJournal(), newFakeDBFile()
	p1, err := Open(f, j)
	if err != nil {
		t.Fatal(err)
	}
	p1.Begin()
	if _, _, err := p1.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p1.Commit(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(f, j)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := p2.PageCount(); n != 2 {
		t.Fatalf("PageCount after reopen = %d, want 2", n)
	}
}

func TestOpenRejectsGarbagePage1(t *testing.T) {
	j, f := newFakeJournal(), newFakeDBFile()
	f.pages[1] = bytes.Repeat([]byte{0xFF}, 4096)
	if _, err := Open(f, j); err == nil {
		t.Fatal("garbage page 1 accepted as a database")
	}
}

func TestAllocateExtendsPageCount(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	pgno, buf, err := p.Allocate()
	if err != nil || pgno != 2 || len(buf) != 4096 {
		t.Fatalf("Allocate = (%d, %d bytes, %v)", pgno, len(buf), err)
	}
	if n, _ := p.PageCount(); n != 2 {
		t.Fatalf("PageCount = %d", n)
	}
	p.Commit()
}

func TestAllocateOutsideTxnFails(t *testing.T) {
	p, _, _ := newPager(t)
	if _, _, err := p.Allocate(); err == nil {
		t.Fatal("Allocate outside txn succeeded")
	}
}

func TestCommitSendsDirtyFrames(t *testing.T) {
	p, j, _ := newPager(t)
	p.Begin()
	_, buf, _ := p.Allocate()
	copy(buf, "hello")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok := j.PageVersion(2)
	if !ok || !bytes.Equal(v[:5], []byte("hello")) {
		t.Fatal("dirty page did not reach the journal")
	}
	// Header page committed too (page count changed).
	if _, ok := j.PageVersion(1); !ok {
		t.Fatal("header page not committed")
	}
}

func TestRollbackRestoresPreImages(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	_, buf, _ := p.Allocate()
	copy(buf, "committed")
	p.Commit()

	p.Begin()
	got, _ := p.Get(2)
	p.MarkDirty(2)
	copy(got, "scribbled")
	p.Rollback()
	got, _ = p.Get(2)
	if !bytes.Equal(got[:9], []byte("committed")) {
		t.Fatalf("rollback left %q", got[:9])
	}
	if n, _ := p.PageCount(); n != 2 {
		t.Fatalf("PageCount after rollback = %d", n)
	}
}

func TestRollbackDropsFreshPages(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	p.Allocate()
	p.Rollback()
	if n, _ := p.PageCount(); n != 1 {
		t.Fatalf("PageCount after rollback = %d, want 1", n)
	}
	// Re-allocation reuses the page number.
	p.Begin()
	pgno, _, _ := p.Allocate()
	if pgno != 2 {
		t.Fatalf("re-allocation got page %d, want 2", pgno)
	}
	p.Rollback()
}

func TestGetReadsThroughJournalThenFile(t *testing.T) {
	p, j, f := newPager(t)
	img := make([]byte, 4096)
	copy(img, "from-journal")
	j.versions[7] = img
	img2 := make([]byte, 4096)
	copy(img2, "from-file")
	f.pages[8] = img2

	got, _ := p.Get(7)
	if !bytes.Equal(got[:12], []byte("from-journal")) {
		t.Fatal("journal version not preferred")
	}
	got, _ = p.Get(8)
	if !bytes.Equal(got[:9], []byte("from-file")) {
		t.Fatal("file fallback broken")
	}
}

func TestGetPageZeroRejected(t *testing.T) {
	p, _, _ := newPager(t)
	if _, err := p.Get(0); err == nil {
		t.Fatal("page 0 accepted")
	}
}

func TestCommitFailureRollsBack(t *testing.T) {
	p, j, _ := newPager(t)
	p.Begin()
	_, buf, _ := p.Allocate()
	copy(buf, "x")
	j.failNext = true
	if err := p.Commit(); err == nil {
		t.Fatal("commit did not propagate journal failure")
	}
	// The failed transaction was rolled back: it is closed, its dirty
	// set is empty, and its page allocation was undone — nothing can
	// leak into the next transaction.
	if p.InTransaction() {
		t.Fatal("failed commit left the transaction open")
	}
	if n := p.DirtyPages(); n != 0 {
		t.Fatalf("DirtyPages = %d after failed commit, want 0", n)
	}
	if n, _ := p.PageCount(); n != 1 {
		t.Fatalf("PageCount = %d after failed-commit rollback", n)
	}
	// The next transaction starts clean and commits nothing extra.
	p.Begin()
	if err := p.Commit(); err != nil {
		t.Fatalf("empty follow-up commit: %v", err)
	}
	if j.commits != 1 {
		t.Fatalf("journal saw %d commits, want only the initial header commit", j.commits)
	}
}

func TestMarkDirtyOutsideTxnPanics(t *testing.T) {
	p, _, _ := newPager(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDirty outside txn did not panic")
		}
	}()
	p.MarkDirty(1)
}

func TestNestedBeginPanics(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Begin did not panic")
		}
		p.Rollback()
	}()
	p.Begin()
}

func TestDropCacheRereadsCommittedState(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	_, buf, _ := p.Allocate()
	copy(buf, "persisted")
	p.Commit()
	p.DropCache()
	got, _ := p.Get(2)
	if !bytes.Equal(got[:9], []byte("persisted")) {
		t.Fatal("cold read lost committed data")
	}
}

func TestDirtyPagesCount(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	p.Allocate()
	p.Allocate()
	// Header + two fresh pages.
	if got := p.DirtyPages(); got != 3 {
		t.Fatalf("DirtyPages = %d, want 3", got)
	}
	p.Rollback()
	if got := p.DirtyPages(); got != 0 {
		t.Fatalf("DirtyPages after rollback = %d", got)
	}
}

func TestFreelistRecyclesPages(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	pg2, _, _ := p.Allocate()
	pg3, _, _ := p.Allocate()
	p.Commit()

	p.Begin()
	if err := p.Free(pg2); err != nil {
		t.Fatal(err)
	}
	if n, _ := p.FreePageCount(); n != 1 {
		t.Fatalf("FreePageCount = %d", n)
	}
	p.Commit()

	p.Begin()
	got, buf, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if got != pg2 {
		t.Fatalf("allocation returned page %d, want recycled %d", got, pg2)
	}
	if !bytes.Equal(buf, make([]byte, 4096)) {
		t.Fatal("recycled page not zeroed")
	}
	if n, _ := p.FreePageCount(); n != 0 {
		t.Fatalf("FreePageCount after reuse = %d", n)
	}
	// Page count did not grow while recycling.
	if n, _ := p.PageCount(); n != pg3 {
		t.Fatalf("PageCount = %d, want %d", n, pg3)
	}
	p.Commit()
}

func TestFreelistChainOrder(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	var pages []uint32
	for i := 0; i < 5; i++ {
		pg, _, _ := p.Allocate()
		pages = append(pages, pg)
	}
	for _, pg := range pages {
		if err := p.Free(pg); err != nil {
			t.Fatal(err)
		}
	}
	// LIFO: the last freed page comes back first.
	for i := len(pages) - 1; i >= 0; i-- {
		pg, _, err := p.Allocate()
		if err != nil || pg != pages[i] {
			t.Fatalf("pop %d = page %d, want %d", len(pages)-1-i, pg, pages[i])
		}
	}
	p.Commit()
}

func TestFreeRollsBack(t *testing.T) {
	p, _, _ := newPager(t)
	p.Begin()
	pg, buf, _ := p.Allocate()
	copy(buf, "payload")
	p.Commit()

	p.Begin()
	p.Free(pg)
	p.Rollback()
	if n, _ := p.FreePageCount(); n != 0 {
		t.Fatalf("rolled-back free left %d freelist entries", n)
	}
	got, _ := p.Get(pg)
	if !bytes.Equal(got[:7], []byte("payload")) {
		t.Fatal("rolled-back free corrupted page content")
	}
}

func TestFreeInvalidPages(t *testing.T) {
	p, _, _ := newPager(t)
	if err := p.Free(2); err == nil {
		t.Fatal("Free outside txn accepted")
	}
	p.Begin()
	if err := p.Free(1); err == nil {
		t.Fatal("freeing the header page accepted")
	}
	p.Rollback()
}

func TestFreelistSurvivesReopen(t *testing.T) {
	j, f := newFakeJournal(), newFakeDBFile()
	p1, _ := Open(f, j)
	p1.Begin()
	pg, _, _ := p1.Allocate()
	p1.Commit()
	p1.Begin()
	p1.Free(pg)
	p1.Commit()

	p2, err := Open(f, j)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := p2.FreePageCount(); n != 1 {
		t.Fatalf("freelist lost across reopen: %d", n)
	}
	p2.Begin()
	got, _, _ := p2.Allocate()
	if got != pg {
		t.Fatalf("reopened pager allocated %d, want %d", got, pg)
	}
	p2.Commit()
}

func TestFrameOrderDeterministic(t *testing.T) {
	frames := []Frame{{Pgno: 9}, {Pgno: 2}, {Pgno: 5}}
	sortFrames(frames)
	if frames[0].Pgno != 2 || frames[1].Pgno != 5 || frames[2].Pgno != 9 {
		t.Fatalf("sortFrames = %v", frames)
	}
}
