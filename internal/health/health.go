// Package health implements progress watchdogs for gray-failure
// detection. Fail-stop faults announce themselves — a crashed component
// returns errors and every caller notices. Gray faults do not: a
// checkpointer that still runs but at 1/50th speed, a replica whose
// acks drift from microseconds to seconds, a flusher stuck behind one
// slow fsync. Nothing errors, everything merely waits.
//
// The watchdog model is deliberately simple and deterministic:
//
//   - Every supervised component owns a Tracker and calls Beat() each
//     time it makes real progress (a checkpoint round drained, a group
//     flushed, a replica ack applied).
//   - Latency-shaped evidence goes in through Observe(d), which feeds a
//     rolling EWMA compared against a per-component budget.
//   - A Tracker is "armed" while the component is expected to make
//     progress (the checkpointer with frames pending, the ack stream
//     with unacked writes). Silence while armed — no Beat within
//     BeatTimeout — latches the Stalled state; silence while disarmed
//     is idleness, not failure.
//
// States escalate OK → Degraded → Stalled and recover with hysteresis:
// a stall clears only on the next Beat, and a degraded EWMA must fall
// below half its budget before the component reads OK again. The
// latching matters because callers poll health at decision points
// (admission control, hedging, quarantine) and must not see a stall
// flicker off between two checks just because the clock moved.
//
// Time is injected via Options.Now so the same watchdog runs against
// the simulation's virtual clock in tests and the wall clock in a real
// deployment.
package health

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// State is a component's latched health.
type State int

const (
	// OK: progressing within budget.
	OK State = iota
	// Degraded: progressing, but the latency EWMA exceeds the budget.
	Degraded
	// Stalled: armed but silent past BeatTimeout — no progress at all.
	Stalled
)

func (s State) String() string {
	switch s {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	case Stalled:
		return "stalled"
	}
	return "unknown"
}

// Options configures a Monitor. The zero value of every field has a
// usable default except Now, which must be provided.
type Options struct {
	// Now is the time source. Inject the virtual clock's Now in
	// simulation, time.Since(start) against the wall clock otherwise.
	Now func() time.Duration
	// BeatTimeout is how long an armed tracker may go without a Beat
	// before it is declared Stalled. Default 100ms (virtual).
	BeatTimeout time.Duration
	// DegradedLatency is the EWMA budget: a tracker whose observed
	// latency EWMA exceeds it reads Degraded. Default 10ms.
	DegradedLatency time.Duration
	// Alpha is the EWMA smoothing factor in (0, 1]. Default 0.2.
	Alpha float64
	// Metrics receives health_state (a gauge over all components,
	// maintained by delta-increments) and the degraded/stalled
	// transition counters. Optional.
	Metrics *metrics.Counters
}

// Monitor is a set of named Trackers sharing one clock and one metrics
// sink. The zero value is not usable; construct with NewMonitor.
type Monitor struct {
	opts Options

	mu       sync.Mutex
	trackers map[string]*Tracker
}

// NewMonitor returns a Monitor with defaults applied.
func NewMonitor(opts Options) *Monitor {
	if opts.Now == nil {
		panic("health: Options.Now is required")
	}
	if opts.BeatTimeout <= 0 {
		opts.BeatTimeout = 100 * time.Millisecond
	}
	if opts.DegradedLatency <= 0 {
		opts.DegradedLatency = 10 * time.Millisecond
	}
	if opts.Alpha <= 0 || opts.Alpha > 1 {
		opts.Alpha = 0.2
	}
	return &Monitor{opts: opts, trackers: make(map[string]*Tracker)}
}

// Tracker returns the named tracker, creating it on first use.
func (m *Monitor) Tracker(name string) *Tracker {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.trackers[name]
	if !ok {
		t = &Tracker{mon: m, name: name, lastBeat: m.opts.Now()}
		m.trackers[name] = t
	}
	return t
}

// States returns a snapshot of every tracker's current state, keyed by
// name. Staleness checks run as part of the snapshot, so an armed-but-
// silent component reads Stalled here without anyone polling it.
func (m *Monitor) States() map[string]State {
	m.mu.Lock()
	names := make([]string, 0, len(m.trackers))
	for name := range m.trackers {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	out := make(map[string]State, len(names))
	for _, name := range names {
		out[name] = m.Tracker(name).State()
	}
	return out
}

// Worst returns the most severe state across all trackers.
func (m *Monitor) Worst() State {
	worst := OK
	for _, s := range m.States() {
		if s > worst {
			worst = s
		}
	}
	return worst
}

// Tracker supervises one component. All methods are safe for concurrent
// use.
type Tracker struct {
	mon  *Monitor
	name string

	mu       sync.Mutex
	armed    bool
	lastBeat time.Duration
	ewma     time.Duration
	seeded   bool // ewma has at least one observation
	state    State
}

// Arm declares that the component is expected to make progress from now
// on; silence past BeatTimeout while armed latches Stalled. Arming
// resets the silence window so old idle time is not counted.
func (t *Tracker) Arm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.armed {
		t.armed = true
		t.lastBeat = t.mon.opts.Now()
	}
}

// Disarm declares the component idle: no progress is expected, so
// silence is not a stall. A latched stall clears — the component is no
// longer behind.
func (t *Tracker) Disarm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.armed = false
	if t.state == Stalled {
		t.setStateLocked(t.latencyStateLocked())
	}
}

// Beat records progress: the silence window restarts and a latched
// stall clears (down to whatever the latency EWMA says).
func (t *Tracker) Beat() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastBeat = t.mon.opts.Now()
	if t.state == Stalled {
		t.setStateLocked(t.latencyStateLocked())
	}
}

// Observe feeds one latency sample into the rolling EWMA and
// re-evaluates the Degraded threshold. It does not count as a Beat:
// observing the latency of a still-slower operation is evidence of
// sickness, not progress. Callers typically Observe then Beat when the
// operation actually completed.
func (t *Tracker) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.seeded {
		t.ewma = d
		t.seeded = true
	} else {
		a := t.mon.opts.Alpha
		t.ewma = time.Duration(a*float64(d) + (1-a)*float64(t.ewma))
	}
	if t.state != Stalled {
		t.setStateLocked(t.latencyStateLocked())
	}
}

// EWMA returns the current latency estimate (zero before the first
// observation).
func (t *Tracker) EWMA() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ewma
}

// State evaluates and returns the component's health. The staleness
// check runs here, so a stalled component is detected by whoever asks —
// no background poller needed in virtual time.
func (t *Tracker) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.armed && t.state != Stalled {
		if t.mon.opts.Now()-t.lastBeat > t.mon.opts.BeatTimeout {
			t.setStateLocked(Stalled)
		}
	}
	return t.state
}

// latencyStateLocked maps the EWMA to OK/Degraded with 2× hysteresis:
// escalate above the budget, recover below half of it.
func (t *Tracker) latencyStateLocked() State {
	budget := t.mon.opts.DegradedLatency
	if t.ewma > budget {
		return Degraded
	}
	if t.state >= Degraded && t.ewma > budget/2 {
		return Degraded
	}
	return OK
}

// setStateLocked applies a transition, maintaining the health_state
// gauge (delta-increments against a counter sink) and the transition
// counters.
func (t *Tracker) setStateLocked(next State) {
	prev := t.state
	if next == prev {
		return
	}
	t.state = next
	m := t.mon.opts.Metrics
	if m == nil {
		return
	}
	m.Inc(metrics.HealthState, int64(next)-int64(prev))
	if next == Degraded && prev < Degraded {
		m.Inc(metrics.HealthDegraded, 1)
	}
	if next == Stalled {
		m.Inc(metrics.HealthStalled, 1)
	}
}
