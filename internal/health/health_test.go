package health

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

func newTestMonitor(m *metrics.Counters) (*Monitor, *simclock.Clock) {
	clk := simclock.New()
	mon := NewMonitor(Options{
		Now:             clk.Now,
		BeatTimeout:     100 * time.Millisecond,
		DegradedLatency: 10 * time.Millisecond,
		Alpha:           0.5,
		Metrics:         m,
	})
	return mon, clk
}

func TestStallLatchesAndClearsOnBeat(t *testing.T) {
	var m metrics.Counters
	mon, clk := newTestMonitor(&m)
	tr := mon.Tracker("checkpointer")

	// Disarmed silence is idleness, not failure.
	clk.Advance(time.Second)
	if got := tr.State(); got != OK {
		t.Fatalf("disarmed idle state = %v, want ok", got)
	}

	tr.Arm()
	clk.Advance(50 * time.Millisecond)
	if got := tr.State(); got != OK {
		t.Fatalf("armed within timeout = %v, want ok", got)
	}
	clk.Advance(51 * time.Millisecond)
	if got := tr.State(); got != Stalled {
		t.Fatalf("armed past timeout = %v, want stalled", got)
	}
	// Latched: time moving on does not un-stall it.
	clk.Advance(time.Hour)
	if got := tr.State(); got != Stalled {
		t.Fatalf("latched stall = %v, want stalled", got)
	}
	if m.Count(metrics.HealthStalled) != 1 {
		t.Fatalf("health_stalled = %d, want 1", m.Count(metrics.HealthStalled))
	}

	tr.Beat()
	if got := tr.State(); got != OK {
		t.Fatalf("after beat = %v, want ok", got)
	}
	if m.Count(metrics.HealthState) != 0 {
		t.Fatalf("health_state gauge = %d, want 0 after recovery", m.Count(metrics.HealthState))
	}
}

func TestDegradedHysteresis(t *testing.T) {
	var m metrics.Counters
	mon, _ := newTestMonitor(&m)
	tr := mon.Tracker("replica")

	if got := tr.EWMA(); got != 0 {
		t.Fatalf("EWMA before any observation = %v, want 0", got)
	}
	tr.Observe(2 * time.Millisecond)
	if got := tr.State(); got != OK {
		t.Fatalf("fast observe = %v, want ok", got)
	}
	if got := tr.EWMA(); got != 2*time.Millisecond {
		t.Fatalf("first observation seeds EWMA = %v, want 2ms", got)
	}
	// Push the EWMA (alpha=0.5) well over the 10ms budget.
	tr.Observe(40 * time.Millisecond)
	tr.Observe(40 * time.Millisecond)
	if got := tr.State(); got != Degraded {
		t.Fatalf("slow observes = %v, want degraded", got)
	}
	if m.Count(metrics.HealthDegraded) != 1 {
		t.Fatalf("health_degraded = %d, want 1", m.Count(metrics.HealthDegraded))
	}
	// Recovery needs the EWMA below half the budget, not just below it.
	tr.Observe(7 * time.Millisecond) // ewma ≈ 19ms
	tr.Observe(7 * time.Millisecond) // ewma ≈ 13ms
	tr.Observe(1 * time.Millisecond) // ewma ≈ 7ms — below budget, above half
	if got := tr.State(); got != Degraded {
		t.Fatalf("within hysteresis band = %v, want degraded", got)
	}
	tr.Observe(0)
	tr.Observe(0) // ewma ≈ 1.8ms — below half the budget
	if got := tr.State(); got != OK {
		t.Fatalf("recovered = %v, want ok", got)
	}
	if m.Count(metrics.HealthState) != 0 {
		t.Fatalf("health_state gauge = %d, want 0", m.Count(metrics.HealthState))
	}
}

func TestDisarmClearsStall(t *testing.T) {
	var m metrics.Counters
	mon, clk := newTestMonitor(&m)
	tr := mon.Tracker("flusher")
	tr.Arm()
	clk.Advance(time.Second)
	if got := tr.State(); got != Stalled {
		t.Fatalf("state = %v, want stalled", got)
	}
	tr.Disarm()
	if got := tr.State(); got != OK {
		t.Fatalf("disarmed state = %v, want ok", got)
	}
	// Re-arming restarts the silence window rather than inheriting it.
	tr.Arm()
	clk.Advance(50 * time.Millisecond)
	if got := tr.State(); got != OK {
		t.Fatalf("re-armed state = %v, want ok", got)
	}
}

func TestMonitorStatesAndWorst(t *testing.T) {
	var m metrics.Counters
	mon, clk := newTestMonitor(&m)
	mon.Tracker("a").Beat()
	b := mon.Tracker("b")
	b.Arm()
	clk.Advance(time.Second)

	states := mon.States()
	if states["a"] != OK || states["b"] != Stalled {
		t.Fatalf("states = %v, want a=ok b=stalled", states)
	}
	if mon.Worst() != Stalled {
		t.Fatalf("worst = %v, want stalled", mon.Worst())
	}
	if Stalled.String() != "stalled" || OK.String() != "ok" || Degraded.String() != "degraded" {
		t.Fatal("State.String mismatch")
	}
}
