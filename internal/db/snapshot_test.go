package db

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestSnapshotReadsAreStable(t *testing.T) {
	for _, opts := range allModes() {
		if opts.Journal == JournalRollback {
			continue
		}
		t.Run(modeName(opts), func(t *testing.T) {
			d, _ := newDB(t, opts)
			d.CreateTable("t")
			mustCommitKV(t, d, "t", map[string]string{"k1": "v1", "k2": "v2"})

			r, err := d.BeginRead()
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			// The writer moves on: updates, deletes, inserts.
			mustCommitKV(t, d, "t", map[string]string{"k1": "CHANGED", "k3": "new"})
			tx, _ := d.Begin()
			tx.Delete("t", []byte("k2"))
			tx.Commit()

			// The snapshot still sees the original state.
			v, ok, err := r.Get("t", []byte("k1"))
			if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
				t.Fatalf("snapshot k1 = (%q,%v,%v)", v, ok, err)
			}
			if _, ok, _ := r.Get("t", []byte("k3")); ok {
				t.Fatal("snapshot sees a later insert")
			}
			if _, ok, _ := r.Get("t", []byte("k2")); !ok {
				t.Fatal("snapshot lost a record deleted later")
			}
			if n, _ := r.Count("t"); n != 2 {
				t.Fatalf("snapshot count = %d, want 2", n)
			}
			// The live view sees the new state.
			v, _, _ = d.Get("t", []byte("k1"))
			if !bytes.Equal(v, []byte("CHANGED")) {
				t.Fatal("live view stale")
			}
		})
	}
}

func TestSnapshotDoesNotSeeUncommittedWrites(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	d.CreateTable("t")
	mustCommitKV(t, d, "t", map[string]string{"base": "yes"})
	tx, _ := d.Begin()
	tx.Insert("t", []byte("pending"), []byte("no"))
	// Reader opens while the write txn is still uncommitted.
	r, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok, _ := r.Get("t", []byte("pending")); ok {
		t.Fatal("snapshot sees uncommitted write")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Still invisible: the snapshot predates the commit.
	if _, ok, _ := r.Get("t", []byte("pending")); ok {
		t.Fatal("snapshot sees a commit after its mark")
	}
}

func TestSnapshotBlocksCheckpoint(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff(), CheckpointLimit: 5})
	d.CreateTable("t")
	mustCommitKV(t, d, "t", map[string]string{"a": "1"})
	r, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	// The reader's mark covers the whole log, so a checkpoint at this
	// watermark cannot invalidate it: it proceeds.
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint with up-to-date reader = %v, want nil", err)
	}
	// A commit past the reader's mark makes the next watermark exceed it;
	// now checkpointing would steal frames the snapshot still needs.
	mustCommitKV(t, d, "t", map[string]string{"b": "2"})
	if err := d.Checkpoint(); err != ErrBusySnapshot {
		t.Fatalf("Checkpoint with stale reader = %v, want ErrBusySnapshot", err)
	}
	// Auto-checkpoint is skipped, not failed: commits keep working past
	// the limit.
	for i := 0; i < 10; i++ {
		mustCommitKV(t, d, "t", map[string]string{fmt.Sprintf("k%d", i): "v"})
	}
	if d.Journal().FramesSinceCheckpoint() == 0 {
		t.Fatal("checkpoint ran despite the open reader")
	}
	r.Close()
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after Close: %v", err)
	}
}

func TestSnapshotAcrossCheckpointEpoch(t *testing.T) {
	// A snapshot taken after a checkpoint reads pages from the database
	// file (the log is empty at its mark).
	d, _ := newDB(t, Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	d.CreateTable("t")
	mustCommitKV(t, d, "t", map[string]string{"old": "data"})
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustCommitKV(t, d, "t", map[string]string{"new": "data"})
	v, ok, err := r.Get("t", []byte("old"))
	if err != nil || !ok || !bytes.Equal(v, []byte("data")) {
		t.Fatalf("snapshot lost checkpointed data: (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := r.Get("t", []byte("new")); ok {
		t.Fatal("snapshot sees post-mark commit")
	}
}

func TestRollbackModeRejectsSnapshots(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalRollback})
	if _, err := d.BeginRead(); err != ErrNoSnapshots {
		t.Fatalf("BeginRead under rollback mode = %v, want ErrNoSnapshots", err)
	}
}

func TestClosedReadTxRejected(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalOptimizedWAL})
	d.CreateTable("t")
	r, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if _, _, err := r.Get("t", []byte("k")); err == nil {
		t.Fatal("closed read txn served a read")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("reader accounting broken: %v", err)
	}
}

func TestManySnapshotsInterleaved(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	d.CreateTable("t")
	var snaps []*ReadTx
	for i := 0; i < 8; i++ {
		mustCommitKV(t, d, "t", map[string]string{fmt.Sprintf("k%d", i): fmt.Sprintf("v%d", i)})
		r, err := d.BeginRead()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, r)
	}
	// Snapshot i sees exactly i+1 records.
	for i, r := range snaps {
		n, err := r.Count("t")
		if err != nil || n != i+1 {
			t.Fatalf("snapshot %d count = %d (%v), want %d", i, n, err, i+1)
		}
		r.Close()
	}
}
