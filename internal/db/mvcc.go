package db

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pager"
	"repro/internal/simclock"
)

// ErrConflict is returned by CTx.Commit when first-committer-wins
// validation rejects the transaction: another transaction committed a
// write to one of this session's written pages after the session's
// snapshot. The session is rolled back cleanly (its page numbers are
// recycled, nothing reached the journal) and the whole transaction is
// safe to retry from a fresh BeginConcurrent.
var ErrConflict = errors.New("db: transaction conflicts with a concurrent commit")

// CTx is an MVCC write transaction: a writer session with its own
// snapshot, its own page working set, and (under a bare NVWAL journal)
// its own per-writer log stream. Unlike Tx, concurrent CTxs build
// their changes fully in parallel — no writer slot is held between
// Begin and Commit — and conflicts surface at commit as a retryable
// ErrConflict under page-level first-committer-wins. One CTx must not
// be shared between goroutines.
type CTx struct {
	d     *DB
	ctx   context.Context
	store *sessionStore
	trees map[string]*btree.Tree
	// stream is the session's per-writer NVRAM log stream (nil when the
	// journal is not a bare NVWAL — fault wrappers and the file WAL fall
	// back to plain frames).
	stream *core.Stream
	// clock, when set via SetClock, receives the session's CPU charges
	// instead of the platform clock — a simclock lane modeling that
	// independent writers burn CPU on independent cores.
	clock *simclock.Clock
	// snapSeq is gc.nextSeq at snapshot time: any versions-vector entry
	// above it is a conflicting later commit.
	snapSeq  uint64
	mark     int
	markHeld bool
	done     bool
	seq      uint64
}

// sessionStore is a CTx's private btree.PageStore: reads come from the
// session snapshot (own working set, then the images of commits that
// were queued but unflushed at snapshot time, then the journal at the
// snapshot mark, then the database file) and every loaded page is a
// private copy, so btree mutations never touch shared state. Page
// numbers for fresh pages come from the DB-wide arbiter (allocTop /
// allocPool), never from the shared freelist — popping the freelist
// requires the writer slot the session deliberately does not hold.
type sessionStore struct {
	d        *DB
	jrn      pager.SnapshotJournal
	mark     int
	pageSize int
	// overlay holds the frame images of commits enqueued but not yet
	// flushed at snapshot time: they are not reachable through the
	// journal mark yet, but they ARE committed. Read-only shared
	// references; Get copies out of them.
	overlay map[uint32][]byte
	pages   map[uint32][]byte // private working images
	base    map[uint32][]byte // committed pre-image of each written page
	dirty   map[uint32]bool
	fresh   map[uint32]bool
	freed   map[uint32]bool // non-fresh pages freed by this session
	// freshFree recycles pages allocated and freed inside this session.
	freshFree []uint32
	// allocs are the page numbers taken from the shared arbiter; on
	// rollback or conflict they return to the pool for other sessions.
	allocs []uint32
}

func (st *sessionStore) PageSize() int { return st.pageSize }

func (st *sessionStore) Get(pgno uint32) ([]byte, error) {
	if pgno == 0 {
		return nil, fmt.Errorf("db: page numbers start at 1")
	}
	if buf, ok := st.pages[pgno]; ok {
		return buf, nil
	}
	buf := make([]byte, st.pageSize)
	if img, ok := st.overlay[pgno]; ok {
		copy(buf, img)
	} else if v, ok := st.jrn.PageVersionAt(pgno, st.mark); ok {
		copy(buf, v)
	} else if err := st.d.dbf.ReadPage(pgno, buf); err != nil {
		return nil, err
	}
	st.pages[pgno] = buf
	return buf, nil
}

func (st *sessionStore) Allocate() (uint32, []byte, error) {
	var pgno uint32
	if n := len(st.freshFree); n > 0 {
		pgno = st.freshFree[n-1]
		st.freshFree = st.freshFree[:n-1]
	} else if p := st.d.poolGet(); p != 0 {
		pgno = p
		st.allocs = append(st.allocs, pgno)
	} else {
		pgno = st.d.allocTop.Add(1)
		st.allocs = append(st.allocs, pgno)
	}
	buf, ok := st.pages[pgno]
	if ok {
		clear(buf)
	} else {
		buf = make([]byte, st.pageSize)
		st.pages[pgno] = buf
	}
	st.dirty[pgno] = true
	st.fresh[pgno] = true
	return pgno, buf, nil
}

func (st *sessionStore) Free(pgno uint32) error {
	if pgno <= 1 {
		return fmt.Errorf("db: cannot free page %d", pgno)
	}
	if st.fresh[pgno] {
		// Never committed: recycle inside the session, no trace outside.
		st.freshFree = append(st.freshFree, pgno)
		delete(st.dirty, pgno)
		return nil
	}
	// Committed page: freeing it is a write (the commit chains it onto
	// the shared freelist), so capture the pre-image for the diff and
	// claim it in the write set.
	if _, ok := st.base[pgno]; !ok {
		buf, err := st.Get(pgno)
		if err != nil {
			return err
		}
		pre := make([]byte, len(buf))
		copy(pre, buf)
		st.base[pgno] = pre
	}
	st.freed[pgno] = true
	delete(st.dirty, pgno)
	return nil
}

func (st *sessionStore) MarkDirty(pgno uint32) {
	if st.dirty[pgno] {
		return
	}
	st.dirty[pgno] = true
	if st.fresh[pgno] {
		return
	}
	if _, ok := st.base[pgno]; !ok {
		if buf, ok := st.pages[pgno]; ok {
			pre := make([]byte, len(buf))
			copy(pre, buf)
			st.base[pgno] = pre
		}
	}
}

// nextPageNumber is the pager's extension arbiter (pager.SetAllocBase):
// it hands out page numbers above both the committed page count and
// everything MVCC sessions have taken, so a legacy transaction
// extending the file can never collide with an in-flight session.
func (d *DB) nextPageNumber(pageCount uint32) uint32 {
	for {
		top := d.allocTop.Load()
		n := pageCount
		if top > n {
			n = top
		}
		if d.allocTop.CompareAndSwap(top, n+1) {
			return n + 1
		}
	}
}

// raiseAllocTop lifts the arbiter to at least n (monotone).
func (d *DB) raiseAllocTop(n uint32) {
	for {
		top := d.allocTop.Load()
		if top >= n || d.allocTop.CompareAndSwap(top, n) {
			return
		}
	}
}

func (d *DB) poolGet() uint32 {
	d.allocMu.Lock()
	defer d.allocMu.Unlock()
	if n := len(d.allocPool); n > 0 {
		p := d.allocPool[n-1]
		d.allocPool = d.allocPool[:n-1]
		return p
	}
	return 0
}

func (d *DB) poolPut(pgnos []uint32) {
	if len(pgnos) == 0 {
		return
	}
	d.allocMu.Lock()
	d.allocPool = append(d.allocPool, pgnos...)
	d.allocMu.Unlock()
}

// BeginConcurrent opens an MVCC write transaction. Requires
// Options.Concurrent and a snapshot-capable journal.
func (d *DB) BeginConcurrent() (*CTx, error) {
	return d.BeginConcurrentCtx(context.Background())
}

// BeginConcurrentCtx is BeginConcurrent with a context bounding the
// admission stall under NVRAM-space backpressure (and, unless
// CommitCtx overrides it, the commit-side stall too).
//
// The snapshot is taken in three phases because of the lock order
// (slot → ckptMu → gc.mu, and ckptMu must never be held while waiting
// on gc.mu — a group flush holding gc.mu reclaims space through the
// checkpoint gate, which takes ckptMu): a provisional mark m0 pins the
// checkpointer first, the real snapshot (seq, mark, overlay) is taken
// under gc.mu where it is consistent with the queue, and the pin then
// moves m0 → mark. Frames between m0 and mark stay readable throughout
// because the gate refuses any watermark above m0 while it is pinned.
// The slot is held only across Begin itself — never while the session
// runs — which keeps solo commits (journal written outside gc.mu)
// from racing the snapshot.
func (d *DB) BeginConcurrentCtx(ctx context.Context) (*CTx, error) {
	sj, ok := d.jrn.(pager.SnapshotJournal)
	if !ok {
		return nil, ErrNoSnapshots
	}
	if !d.opts.Concurrent {
		return nil, errors.New("db: BeginConcurrent requires Options.Concurrent")
	}
	if err := d.Degraded(); err != nil {
		return nil, err
	}
	if err := d.admitWriter(ctx); err != nil {
		return nil, err
	}
	d.gc.register()
	if err := d.acquireSlot(); err != nil {
		d.gc.unregister()
		return nil, err
	}
	if err := d.gc.bail(); err != nil {
		d.releaseSlot()
		d.gc.unregister()
		return nil, err
	}
	// Arm the shared page-number arbiter (lazily, so purely legacy
	// workloads keep exact page-count behaviour on rollback) and lift
	// it over the committed page count.
	if !d.mvccAlloc {
		d.pg.SetAllocBase(d.nextPageNumber)
		d.mvccAlloc = true
	}
	pc, err := d.pg.PageCount()
	if err != nil {
		d.releaseSlot()
		d.gc.unregister()
		return nil, err
	}
	d.raiseAllocTop(pc)

	// Phase 1: provisional checkpoint pin.
	d.ckptMu.Lock()
	d.readers.Add(1)
	m0 := sj.Mark()
	d.openMarks[m0]++
	d.ckptMu.Unlock()

	// Phase 2: the real snapshot, consistent under gc.mu.
	gc := d.gc
	gc.mu.Lock()
	snapSeq := gc.nextSeq
	mark := sj.Mark()
	var overlay map[uint32][]byte
	for _, r := range gc.queue {
		for _, fr := range r.frames {
			if overlay == nil {
				overlay = make(map[uint32][]byte)
			}
			overlay[fr.Pgno] = fr.Data
		}
	}
	gc.mu.Unlock()

	// Phase 3: move the pin to the real mark.
	if mark != m0 {
		d.ckptMu.Lock()
		if n := d.openMarks[m0]; n <= 1 {
			delete(d.openMarks, m0)
		} else {
			d.openMarks[m0] = n - 1
		}
		d.openMarks[mark]++
		d.ckptMu.Unlock()
	}

	var stream *core.Stream
	if nv, ok := d.jrn.(*core.NVWAL); ok {
		stream = nv.NewStream()
	}
	d.releaseSlot()

	return &CTx{
		d:   d,
		ctx: ctx,
		store: &sessionStore{
			d:        d,
			jrn:      sj,
			mark:     mark,
			pageSize: d.pg.PageSize(),
			overlay:  overlay,
			pages:    make(map[uint32][]byte),
			base:     make(map[uint32][]byte),
			dirty:    make(map[uint32]bool),
			fresh:    make(map[uint32]bool),
			freed:    make(map[uint32]bool),
		},
		trees:    make(map[string]*btree.Tree),
		stream:   stream,
		snapSeq:  snapSeq,
		mark:     mark,
		markHeld: true,
	}, nil
}

// SetClock redirects the session's CPU cost charges to a dedicated
// simclock lane (benchmarks model independent writers as independent
// cores this way). Must be called before any operation.
func (tx *CTx) SetClock(c *simclock.Clock) { tx.clock = c }

// Seq returns the commit sequence number (0 until Commit succeeds, and
// for read-only sessions, which consume no seq).
func (tx *CTx) Seq() uint64 { return tx.seq }

func (tx *CTx) charge(dur time.Duration) {
	if dur <= 0 {
		return
	}
	if tx.clock != nil {
		tx.clock.Advance(dur)
		tx.d.plat.Metrics.AddTime(metrics.TimeCPU, dur)
		return
	}
	tx.d.chargeCPU(dur)
}

func (tx *CTx) guard() error {
	if tx.done {
		return ErrNoTxn
	}
	return nil
}

// sessionCatalog parses the table catalog as of the snapshot.
func (tx *CTx) sessionCatalog() (map[string]uint32, error) {
	hdr, err := tx.store.Get(1)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	out := make(map[string]uint32, n)
	for i := 0; i < n; i++ {
		off := catalogOff + 2 + i*tableEntry
		name := strings.TrimRight(string(hdr[off:off+tableNameLen]), "\x00")
		out[name] = binary.LittleEndian.Uint32(hdr[off+tableNameLen:])
	}
	return out, nil
}

func (tx *CTx) tree(table string) (*btree.Tree, error) {
	if t, ok := tx.trees[table]; ok {
		return t, nil
	}
	cat, err := tx.sessionCatalog()
	if err != nil {
		return nil, err
	}
	root, ok := cat[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	t := btree.New(tx.store, root, btree.Config{Reserved: tx.d.reserved()})
	tx.trees[table] = t
	return t, nil
}

// Insert stores key/value in table, replacing an existing value.
func (tx *CTx) Insert(table string, key, value []byte) error {
	if err := tx.guard(); err != nil {
		return err
	}
	t, err := tx.tree(table)
	if err != nil {
		return err
	}
	tx.charge(tx.d.opts.CPU.PerOp)
	return t.Put(key, value)
}

// Update rewrites an existing record, reporting whether it existed.
func (tx *CTx) Update(table string, key, value []byte) (bool, error) {
	if err := tx.guard(); err != nil {
		return false, err
	}
	t, err := tx.tree(table)
	if err != nil {
		return false, err
	}
	tx.charge(tx.d.opts.CPU.PerOp)
	return t.Update(key, value)
}

// Delete removes a record, reporting whether it existed.
func (tx *CTx) Delete(table string, key []byte) (bool, error) {
	if err := tx.guard(); err != nil {
		return false, err
	}
	t, err := tx.tree(table)
	if err != nil {
		return false, err
	}
	tx.charge(tx.d.opts.CPU.PerOp)
	return t.Delete(key)
}

// Get reads a record at the snapshot, seeing the session's own writes.
func (tx *CTx) Get(table string, key []byte) ([]byte, bool, error) {
	if err := tx.guard(); err != nil {
		return nil, false, err
	}
	t, err := tx.tree(table)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Scan visits table's records at the snapshot (including the session's
// own writes) in ascending key order until fn returns false.
func (tx *CTx) Scan(table string, fn func(key, value []byte) bool) error {
	if err := tx.guard(); err != nil {
		return err
	}
	t, err := tx.tree(table)
	if err != nil {
		return err
	}
	return t.Scan(fn)
}

// releaseMark drops the session's checkpoint pin.
func (tx *CTx) releaseMark() {
	if !tx.markHeld {
		return
	}
	tx.markHeld = false
	d := tx.d
	d.ckptMu.Lock()
	d.readers.Add(-1)
	if n := d.openMarks[tx.mark]; n <= 1 {
		delete(d.openMarks, tx.mark)
	} else {
		d.openMarks[tx.mark] = n - 1
	}
	d.ckptMu.Unlock()
	d.kickCheckpoint()
}

// finish closes the session out: mark released, writer unregistered,
// and (when the session did not commit) its page numbers recycled.
func (tx *CTx) finish(recycle bool) {
	tx.done = true
	tx.releaseMark()
	if recycle {
		tx.d.poolPut(tx.store.allocs)
	}
	tx.d.gc.unregister()
}

// Rollback abandons the session. Nothing reached shared state, so this
// only recycles the session's page numbers.
func (tx *CTx) Rollback() {
	if tx.done {
		return
	}
	tx.finish(true)
}

// Commit validates and commits the session (see CommitCtx).
func (tx *CTx) Commit() error {
	ctx := tx.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return tx.CommitCtx(ctx)
}

// sessionWrite is one page the session will commit.
type sessionWrite struct {
	pgno  uint32
	img   []byte
	base  []byte // nil stages a full frame
	fresh bool
}

// CommitCtx runs first-committer-wins validation and, if the session
// wins, commits it through the group queue. The expensive half — the
// differential staging of every written page into the session's log
// stream — runs before any engine lock is taken, fully in parallel
// with other committing sessions; the writer slot is held only for the
// page-1 reconcile, validation, and enqueue. Losers get ErrConflict
// with the session rolled back cleanly; the deadline machinery
// (Options.CommitTimeout / ctx) bounds backpressure stalls exactly as
// for legacy commits.
func (tx *CTx) CommitCtx(ctx context.Context) error {
	if err := tx.guard(); err != nil {
		return err
	}
	d := tx.d
	tx.charge(d.opts.CPU.TxnFixed)
	dl := d.newDeadline(ctx)
	st := tx.store

	// Stage the session's own writes — no lock held.
	writes := make([]sessionWrite, 0, len(st.dirty))
	for pgno := range st.dirty {
		writes = append(writes, sessionWrite{
			pgno:  pgno,
			img:   st.pages[pgno],
			base:  st.base[pgno],
			fresh: st.fresh[pgno],
		})
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].pgno < writes[j].pgno })
	staged := make([]sessionWrite, 0, len(writes)+len(st.freed)+1)
	for _, wr := range writes {
		ok, err := tx.stagePage(wr)
		if err != nil {
			tx.finish(true)
			return err
		}
		if ok {
			staged = append(staged, wr)
		}
	}
	if len(staged) == 0 && len(st.freed) == 0 {
		// Read-only (or all writes were byte-identical no-ops): nothing
		// to validate, nothing to log.
		tx.finish(true)
		return nil
	}

	// The snapshot is no longer needed — everything the commit writes
	// is materialized above. Dropping the pin here keeps the session's
	// own flush (whose space reclaim checkpoints through the mark gate)
	// from being blocked by its own mark.
	tx.releaseMark()

	if err := d.acquireSlot(); err != nil {
		tx.finish(true)
		return err
	}
	if err := d.gc.bail(); err != nil {
		d.releaseSlot()
		tx.finish(true)
		return err
	}

	// Page-1 reconcile, against the CURRENT committed header (stable
	// while the slot is held), not the snapshot: the page count covers
	// every page this session materializes, and freed pages chain onto
	// the shared freelist. Sessions never write page 1 from btree ops,
	// so this page is never part of the validation set — the slot
	// serializes it.
	cur1, err := d.pg.Get(1)
	if err != nil {
		d.releaseSlot()
		tx.finish(true)
		return err
	}
	base1 := make([]byte, len(cur1))
	copy(base1, cur1)
	img1 := make([]byte, len(cur1))
	copy(img1, cur1)
	maxOwn := pager.HeaderPageCount(img1)
	for _, wr := range staged {
		if wr.fresh && wr.pgno > maxOwn {
			maxOwn = wr.pgno
		}
	}
	pager.SetHeaderPageCount(img1, maxOwn)
	freed := make([]uint32, 0, len(st.freed))
	for pgno := range st.freed {
		freed = append(freed, pgno)
	}
	sort.Slice(freed, func(i, j int) bool { return freed[i] < freed[j] })
	head := pager.HeaderFreeHead(img1)
	cnt := pager.HeaderFreeCount(img1)
	for _, pgno := range freed {
		link := make([]byte, st.pageSize)
		copy(link, st.base[pgno])
		pager.SetFreelistLink(link, head)
		head = pgno
		cnt++
		wr := sessionWrite{pgno: pgno, img: link, base: st.base[pgno]}
		ok, err := tx.stagePage(wr)
		if err != nil {
			d.releaseSlot()
			tx.finish(true)
			return err
		}
		if ok {
			staged = append(staged, wr)
		}
	}
	pager.SetHeaderFreeHead(img1, head)
	pager.SetHeaderFreeCount(img1, cnt)
	hdrWrite := sessionWrite{pgno: 1, img: img1, base: base1}
	if ok, err := tx.stagePage(hdrWrite); err != nil {
		d.releaseSlot()
		tx.finish(true)
		return err
	} else if ok {
		staged = append(staged, hdrWrite)
	}

	// Validate + publish under gc.mu: the versions vector, the seq, and
	// the queue position all move together.
	gc := d.gc
	gc.mu.Lock()
	if gc.failed != nil {
		err := gc.failed
		gc.mu.Unlock()
		d.releaseSlot()
		tx.finish(true)
		return err
	}
	for _, wr := range staged {
		if wr.pgno == 1 || wr.fresh {
			continue
		}
		if gc.versions[wr.pgno] > tx.snapSeq {
			gc.mu.Unlock()
			d.releaseSlot()
			tx.finish(true)
			d.plat.Metrics.Inc(metrics.MVCCConflicts, 1)
			return fmt.Errorf("%w: page %d", ErrConflict, wr.pgno)
		}
	}
	gc.nextSeq++
	seq := gc.nextSeq
	for _, wr := range staged {
		gc.bumpPage(wr.pgno, seq)
	}
	var frames []pager.Frame
	if tx.stream != nil {
		frames = tx.stream.StreamFrames()
	} else {
		frames = make([]pager.Frame, 0, len(staged))
		for _, wr := range staged {
			frames = append(frames, pager.Frame{Pgno: wr.pgno, Data: wr.img})
		}
	}
	req := &commitReq{frames: frames, stream: tx.stream, done: make(chan struct{}), until: dl.until}
	gc.queue = append(gc.queue, req)
	if len(gc.queue) >= gc.size || len(gc.queue) >= gc.writers {
		gc.flushLocked()
	}
	gc.mu.Unlock()

	// Publish the committed images into the shared pager cache before
	// the slot is released, so the next legacy writer (and non-snapshot
	// reads) see them — the analogue of FinishCommit.
	for _, wr := range staged {
		d.pg.Install(wr.pgno, wr.img)
	}
	d.releaseSlot()
	<-req.done
	if req.err != nil {
		tx.finish(false) // group failure latches the engine; images may be shared
		return req.err
	}
	tx.seq = seq
	tx.finish(false)
	d.plat.Metrics.Inc(metrics.MVCCCommits, 1)
	d.maybeKickScrub()
	return d.maybeAutoCheckpoint()
}

// stagePage routes one write into the session's stream (or, without
// one, applies the same no-op skip the stream would). Reports whether
// the page actually needs logging.
func (tx *CTx) stagePage(wr sessionWrite) (bool, error) {
	if tx.stream != nil {
		return tx.stream.StagePage(wr.pgno, wr.img, wr.base)
	}
	if wr.base != nil && bytes.Equal(wr.img, wr.base) {
		return false, nil
	}
	return true, nil
}

// RunConcurrent runs fn inside MVCC sessions, retrying conflicts until
// the commit succeeds, fn fails, or the backpressure deadline
// (Options.CommitTimeout / ctx) expires — the same budget legacy
// commits stall under. fn must be idempotent: it may run many times.
func (d *DB) RunConcurrent(ctx context.Context, fn func(tx *CTx) error) error {
	dl := d.newDeadline(ctx)
	for {
		tx, err := d.BeginConcurrentCtx(ctx)
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			tx.Rollback()
			return err
		}
		err = tx.CommitCtx(ctx)
		if err == nil || !errors.Is(err, ErrConflict) {
			return err
		}
		if derr := dl.expired("mvcc-commit"); derr != nil {
			return fmt.Errorf("%w (last: %v)", derr, err)
		}
	}
}
