package db

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestBusyErrorCarriesContext pins the structured shed contract: a
// Begin stalled by the hard watermark past a cancelled context fails
// with a value that still matches the ErrBusy sentinel AND exposes the
// tripped watermark, the space situation and retry advice via
// errors.As — the payload the serving layer's retry-advice wire field
// and operator logs are built from. An open snapshot reader pins the
// log so the stall loop's urgent checkpoints cannot free space and the
// deadline must expire.
func TestBusyErrorCarriesContext(t *testing.T) {
	d, _ := newTinyHeapDB(t, 256, Options{
		Journal: JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
	})
	defer d.Close()
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	// A snapshot reader opened first pins the log: every checkpoint
	// round the stall loop kicks is refused by the reader gate, so the
	// fill below drains free space for good and the Begin stall cannot
	// recover it.
	rd, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	_, _, hard, ok := d.Pressure()
	if !ok {
		t.Fatal("NVWAL database reported no pressure state")
	}
	for i := 0; i < 10000; i++ {
		avail, _, _, _ := d.Pressure()
		if avail < hard {
			break
		}
		tx, err := d.Begin()
		if err != nil {
			t.Fatalf("fill txn %d: %v", i, err)
		}
		if err := tx.Insert("t", []byte(fmt.Sprintf("k%04d", i)), make([]byte, 2048)); err != nil {
			tx.Rollback()
			break
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("fill txn %d: commit: %v", i, err)
		}
	}
	if avail, _, _, _ := d.Pressure(); avail >= hard {
		t.Fatalf("fill never crossed the hard watermark: %d available, hard %d", avail, hard)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = d.BeginCtx(ctx)
	if err == nil {
		t.Fatal("BeginCtx under exhaustion with a cancelled context succeeded")
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("ErrBusy without structured BusyError: %v", err)
	}
	if busy.Watermark != "begin-admission" {
		t.Fatalf("watermark %q, want begin-admission", busy.Watermark)
	}
	if busy.Backoff <= 0 || busy.Hard != hard || busy.Avail >= busy.Hard {
		t.Fatalf("BusyError missing trip context: %+v", busy)
	}
	if busy.Shard != -1 {
		t.Fatalf("unsharded BusyError must carry Shard=-1, got %d", busy.Shard)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BusyError lost its cause: %v", err)
	}

	// WithShard annotates exactly once and copies (the original keeps
	// Shard=-1 for other holders of the error value).
	annotated := WithShard(err, 3)
	var be2 *BusyError
	if !errors.As(annotated, &be2) || be2.Shard != 3 || busy.Shard != -1 {
		t.Fatalf("WithShard: got %+v, original %+v", be2, busy)
	}
}
