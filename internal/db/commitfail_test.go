package db

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/pager"
	"repro/internal/platform"
)

// faultJournal wraps a real journal and fails on demand, so tests can
// observe how the engine reacts to journal-layer errors.
type faultJournal struct {
	pager.Journal
	failCommits     int // fail this many CommitTransaction calls
	failCheckpoints int // fail this many Checkpoint calls
}

var errInjected = errors.New("injected journal failure")

func (j *faultJournal) CommitTransaction(frames []pager.Frame) error {
	if j.failCommits > 0 {
		j.failCommits--
		return errInjected
	}
	return j.Journal.CommitTransaction(frames)
}

func (j *faultJournal) Checkpoint() error {
	if j.failCheckpoints > 0 {
		j.failCheckpoints--
		return errInjected
	}
	return j.Journal.Checkpoint()
}

// TestFailedCommitLeavesNextTxnClean is the regression test for the
// DB/pager state desync: a failed journal commit used to leave the
// pager transaction open (with its dirty pages) while the DB already
// considered the transaction finished, so the next commit silently
// carried the failed transaction's pages.
func TestFailedCommitLeavesNextTxnClean(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalOptimizedWAL})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"base": "v"})

	fj := &faultJournal{Journal: d.jrn, failCommits: 1}
	d.pg.SetJournal(fj)

	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", []byte("doomed"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit did not propagate the journal failure")
	} else if !errors.Is(err, errInjected) {
		t.Fatalf("commit error = %v, want the injected failure", err)
	}

	// The engine and pager agree: no transaction open, no dirty pages.
	if d.pg.InTransaction() {
		t.Fatal("failed commit left the pager transaction open")
	}
	if n := d.pg.DirtyPages(); n != 0 {
		t.Fatalf("failed commit left %d dirty pages", n)
	}

	// The next transaction starts clean: it must not resurrect the
	// failed insert, and the journal must see only its own frames.
	tx2, err := d.Begin()
	if err != nil {
		t.Fatalf("Begin after failed commit: %v", err)
	}
	if _, ok, _ := tx2.Get("t", []byte("doomed")); ok {
		t.Fatal("failed transaction's insert visible to the next transaction")
	}
	if err := tx2.Insert("t", []byte("clean"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit after failed commit: %v", err)
	}
	if _, ok, _ := d.Get("t", []byte("doomed")); ok {
		t.Fatal("failed insert leaked into a later commit")
	}
	if v, ok, _ := d.Get("t", []byte("clean")); !ok || string(v) != "y" {
		t.Fatal("follow-up commit lost")
	}
	if _, ok, _ := d.Get("t", []byte("base")); !ok {
		t.Fatal("pre-existing data lost")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedCommitThenCrash proves the failed transaction is invisible
// to recovery too: after the failure, a power failure and reboot must
// bring back everything committed and nothing from the failed txn.
func TestFailedCommitThenCrash(t *testing.T) {
	opts := Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()}
	plat, err := platform.NewNexus5()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(plat, "c.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	d.CreateTable("t")
	mustCommitKV(t, d, "t", map[string]string{"base": "v"})

	d.pg.SetJournal(&faultJournal{Journal: d.jrn, failCommits: 1})
	tx, _ := d.Begin()
	tx.Insert("t", []byte("doomed"), []byte("x"))
	if err := tx.Commit(); err == nil {
		t.Fatal("commit did not fail")
	}
	d.pg.SetJournal(d.jrn)
	mustCommitKV(t, d, "t", map[string]string{"after": "z"})

	plat.PowerFail(memsim.FailDropAll, 7)
	if err := plat.Reboot(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(plat, "c.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d2.Get("t", []byte("doomed")); ok {
		t.Fatal("failed transaction recovered after crash")
	}
	for _, k := range []string{"base", "after"} {
		if _, ok, _ := d2.Get("t", []byte(k)); !ok {
			t.Fatalf("committed key %q lost after crash", k)
		}
	}
	if err := d2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCheckpointFailureIsDistinguishable covers the second commit-
// path fix: the transaction is durable once the journal accepted it, so
// a failing auto-checkpoint must surface as ErrCheckpointDeferred, not
// as a commit failure.
func TestAutoCheckpointFailureIsDistinguishable(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalOptimizedWAL, CheckpointLimit: 1})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	fj := &faultJournal{Journal: d.jrn, failCheckpoints: 1}
	d.jrn = fj
	d.pg.SetJournal(fj)
	d.gc.jrn = fj

	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if err == nil {
		t.Fatal("checkpoint failure swallowed")
	}
	if !errors.Is(err, ErrCheckpointDeferred) {
		t.Fatalf("commit error = %v, want ErrCheckpointDeferred", err)
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("commit error = %v, want it to wrap the checkpoint cause", err)
	}
	// The transaction is durable despite the error.
	if v, ok, _ := d.Get("t", []byte("k")); !ok || string(v) != "v" {
		t.Fatal("committed data missing after deferred checkpoint")
	}
	// The deferred checkpoint succeeds on the next commit.
	mustCommitKV(t, d, "t", map[string]string{"k2": "v2"})
	if d.Journal().FramesSinceCheckpoint() != 0 {
		t.Fatal("checkpoint never retried")
	}
}
