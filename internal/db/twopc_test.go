package db

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/platform"
)

func nvwalOpts() Options {
	return Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()}
}

func beginInsert(t *testing.T, d *DB, table, k, v string) *Tx {
	t.Helper()
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(table, []byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTxPrepareCompletePublishes(t *testing.T) {
	d, _ := newDB(t, nvwalOpts())
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx := beginInsert(t, d, "t", "k", "v1")
	if err := tx.Prepare(7); err != nil {
		t.Fatal(err)
	}
	if tx.Gtx() != 7 {
		t.Fatalf("Gtx = %d, want 7", tx.Gtx())
	}
	if err := tx.CompletePrepared(); err != nil {
		t.Fatal(err)
	}
	if tx.Seq() == 0 {
		t.Fatal("no sequence number assigned by CompletePrepared")
	}
	v, ok, err := d.Get("t", []byte("k"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get after complete = (%q,%v,%v)", v, ok, err)
	}
	// The engine keeps working: ordinary commits and another 2PC round.
	mustCommitKV(t, d, "t", map[string]string{"k2": "v2"})
	tx2 := beginInsert(t, d, "t", "k3", "v3")
	if err := tx2.Prepare(8); err != nil {
		t.Fatal(err)
	}
	if err := tx2.CompletePrepared(); err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTxPrepareAbortUnwinds(t *testing.T) {
	d, _ := newDB(t, nvwalOpts())
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"pre": "1"})
	tx := beginInsert(t, d, "t", "gone", "x")
	if err := tx.Prepare(9); err != nil {
		t.Fatal(err)
	}
	if err := tx.AbortPrepared(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Get("t", []byte("gone")); ok {
		t.Fatal("aborted prepared write visible")
	}
	if _, ok, _ := d.Get("t", []byte("pre")); !ok {
		t.Fatal("earlier commit lost")
	}
	mustCommitKV(t, d, "t", map[string]string{"post": "2"})
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTxPrepareGuards(t *testing.T) {
	d, _ := newDB(t, nvwalOpts())
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	// Complete/Abort before Prepare.
	tx, _ := d.Begin()
	if err := tx.CompletePrepared(); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("CompletePrepared unprepared: %v", err)
	}
	if err := tx.AbortPrepared(); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("AbortPrepared unprepared: %v", err)
	}
	tx.Rollback()
	// Commit on a prepared transaction is refused; Rollback aborts it.
	tx = beginInsert(t, d, "t", "k", "v")
	if err := tx.Prepare(5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrPrepared) {
		t.Fatalf("Commit on prepared tx: %v", err)
	}
	if err := tx.Prepare(6); err == nil {
		t.Fatal("double Prepare accepted")
	}
	tx.Rollback()
	if _, ok, _ := d.Get("t", []byte("k")); ok {
		t.Fatal("rolled-back prepared write visible")
	}
	// The slot is free again.
	mustCommitKV(t, d, "t", map[string]string{"after": "1"})
}

func TestTxPrepareRollbackJournalRefused(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalRollback})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx := beginInsert(t, d, "t", "k", "v")
	if err := tx.Prepare(3); err == nil {
		t.Fatal("Prepare accepted on a rollback journal")
	}
	// The failed Prepare rolled the transaction back cleanly.
	mustCommitKV(t, d, "t", map[string]string{"k2": "v2"})
}

// TestTxInDoubtCrashRecovery is the db-level half of in-doubt
// resolution: crash between Prepare and CompletePrepared, reopen with a
// resolver carrying the coordinator's decision.
func TestTxInDoubtCrashRecovery(t *testing.T) {
	for _, decided := range []bool{true, false} {
		plat, err := platform.NewNexus5()
		if err != nil {
			t.Fatal(err)
		}
		opts := nvwalOpts()
		d, err := Open(plat, "c.db", opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.CreateTable("t"); err != nil {
			t.Fatal(err)
		}
		mustCommitKV(t, d, "t", map[string]string{"pre": "1"})
		tx := beginInsert(t, d, "t", "doubt", "x")
		if err := tx.Prepare(42); err != nil {
			t.Fatal(err)
		}
		d.Abandon()
		plat.PowerFail(memsim.FailDropAll, 11)
		if err := plat.Reboot(); err != nil {
			t.Fatal(err)
		}
		opts.NVWAL.PreparedResolver = func(gtx uint64) bool { return decided && gtx == 42 }
		d2, err := Open(plat, "c.db", opts)
		if err != nil {
			t.Fatal(err)
		}
		_, ok, err := d2.Get("t", []byte("doubt"))
		if err != nil {
			t.Fatal(err)
		}
		if ok != decided {
			t.Fatalf("decided=%v: in-doubt key present=%v", decided, ok)
		}
		if _, ok, _ := d2.Get("t", []byte("pre")); !ok {
			t.Fatalf("decided=%v: earlier commit lost", decided)
		}
		mustCommitKV(t, d2, "t", map[string]string{"post": "2"})
		if err := d2.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPrepareAbsorbsPressure drives every append through the prepare
// path on a tiny heap. With the log pinned by a snapshot reader no
// checkpoint round can free space, so Prepare's reclaim loop runs out
// the deadline and surfaces a clean ErrBusy with the transaction rolled
// back; once the reader closes, prepared transactions flow again.
func TestPrepareAbsorbsPressure(t *testing.T) {
	d, plat := newTinyHeapDB(t, 64, Options{
		Journal:       JournalNVWAL,
		NVWAL:         core.VariantUHLSDiff(),
		CommitTimeout: 2 * time.Millisecond,
	})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"seed": "v"})
	rd, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}

	busy := false
	gtx := uint64(1)
	for i := 0; i < 100 && !busy; i++ {
		tx, err := d.Begin()
		if err != nil {
			assertCleanPressureErr(t, err)
			if errors.Is(err, ErrBusy) {
				busy = true
			}
			continue
		}
		key := []byte(fmt.Sprintf("fill%d", i))
		if err := tx.Insert("t", key, []byte(strings.Repeat(string(rune('a'+i%26)), 4096))); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		if err := tx.Prepare(gtx); err != nil {
			assertCleanPressureErr(t, err)
			if errors.Is(err, ErrBusy) {
				busy = true
			}
			continue
		}
		if err := tx.CompletePrepared(); err != nil {
			t.Fatalf("fill %d: complete: %v", i, err)
		}
		gtx++
	}
	if !busy {
		t.Fatal("100 prepared txns against a pinned 64-page heap never hit ErrBusy")
	}
	if plat.Metrics.Count(metrics.PressureStalls) == 0 {
		t.Fatal("ErrBusy returned but pressure_stalls counter is zero")
	}
	if d.Degraded() != nil {
		t.Fatalf("deadline expiry must not latch degraded mode: %v", d.Degraded())
	}

	rd.Close()
	tx := beginInsert(t, d, "t", "post", "v")
	if err := tx.Prepare(gtx); err != nil {
		t.Fatalf("prepare after reader close: %v", err)
	}
	if err := tx.CompletePrepared(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := d.Get("t", []byte("post")); !ok || string(v) != "v" {
		t.Fatal("post-pressure prepared commit lost")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}
