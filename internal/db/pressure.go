// NVRAM-space backpressure for the database layer. The heap's
// commit-time reservations (heapo.Reserve) make exhaustion an up-front
// ErrLogFull instead of a mid-append surprise; this file turns that
// clean refusal into a survivable workload property:
//
//   - watermarks: when the heap's available pages fall below the soft
//     watermark an urgent checkpoint is kicked early (before the
//     CheckpointLimit would), and below the hard watermark NEW write
//     transactions stall at Begin — in-flight ones keep running — until
//     checkpointing frees space;
//   - deadlines: Options.CommitTimeout (virtual time) and the contexts
//     of BeginCtx/CommitCtx bound every stall; expiry surfaces as a
//     clean ErrBusy with the transaction rolled back;
//   - the degradation ladder's last rung: when the log is fully
//     checkpointed and space is still short, no checkpoint can ever
//     help, so the DB latches ErrDegraded read-only instead of
//     spinning.
package db

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/heapo"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// ErrBusy is returned when a write stalled by NVRAM-space backpressure
// outlives its deadline (Options.CommitTimeout, or the context given to
// BeginCtx/CommitCtx). The transaction is rolled back cleanly: nothing
// reached the journal, and a later retry may succeed once a checkpoint
// frees space.
var ErrBusy = errors.New("db: stalled past deadline by NVRAM backpressure")

// Stall re-probe policy: exponential backoff charged to the virtual
// clock (so CommitTimeout expires deterministically) with a capped real
// sleep in Concurrent mode so checkpointers and closing readers get CPU.
const (
	stallBackoffMin = 100 * time.Microsecond
	stallBackoffMax = 5 * time.Millisecond
)

// pressureState holds the free-space watermarks for a JournalNVWAL
// database. Watermarks are in heap pages and derived from the heap
// size: hard ≈ total/32 and soft ≈ total/8, clamped so tiny fuzzing
// heaps keep a sane gap and huge heaps don't hoard megabytes.
type pressureState struct {
	heap *heapo.Manager
	soft int // kick an urgent checkpoint below this
	hard int // stall new writers below this
}

func newPressureState(heap *heapo.Manager) *pressureState {
	total := heap.TotalPages()
	hard := total / 32
	if hard < 2 {
		hard = 2
	}
	if hard > 64 {
		hard = 64
	}
	soft := total / 8
	if soft < hard+2 {
		soft = hard + 2
	}
	if soft > 256 {
		soft = 256
	}
	return &pressureState{heap: heap, soft: soft, hard: hard}
}

// avail is the page count a checkpoint-free allocation can draw on:
// free runs plus the recycled block pool (pool blocks are immediately
// reusable for log appends without consuming free pages).
func (p *pressureState) avail() int { return p.heap.FreePages() + p.heap.RecycledPages() }

// Pressure reports the space situation the admission watermarks gate
// on: heap pages available, and the soft and hard watermarks. ok is
// false for journal modes without NVRAM backpressure. The serving
// layer probes it to shed load with retry advice before a stall would
// even begin.
func (d *DB) Pressure() (avail, soft, hard int, ok bool) {
	p := d.pressure
	if p == nil {
		return 0, 0, 0, false
	}
	return p.avail(), p.soft, p.hard, true
}

// deadline bounds one backpressure stall: a context (real
// cancellation) plus a virtual-clock expiry derived from
// Options.CommitTimeout. The zero until means no virtual deadline.
type deadline struct {
	d     *DB
	ctx   context.Context
	until time.Duration
}

func (d *DB) newDeadline(ctx context.Context) deadline {
	dl := deadline{d: d, ctx: ctx}
	if d.opts.CommitTimeout > 0 {
		dl.until = d.plat.Clock.Now() + d.opts.CommitTimeout
	}
	return dl
}

// expired returns the structured ErrBusy once the deadline passed.
// where names the stall site (see BusyError.Watermark).
func (dl deadline) expired(where string) error {
	if dl.ctx != nil {
		select {
		case <-dl.ctx.Done():
			return dl.busy(where, dl.ctx.Err())
		default:
		}
	}
	if dl.until > 0 && dl.d.plat.Clock.Now() >= dl.until {
		return dl.busy(where, fmt.Errorf("CommitTimeout %v elapsed", dl.d.opts.CommitTimeout))
	}
	return nil
}

// stallStep spends one backoff interval and returns the next (doubled,
// capped). The interval is charged to the virtual clock — stalls cost
// simulated time like any other wait — and, in Concurrent mode, a
// bounded real sleep lets the background checkpointer and closing
// readers run.
func (d *DB) stallStep(backoff time.Duration) time.Duration {
	d.plat.Clock.Advance(backoff)
	d.plat.Metrics.Inc(metrics.PressureStallNs, backoff.Nanoseconds())
	if d.opts.Concurrent {
		real := backoff
		if real > time.Millisecond {
			real = time.Millisecond
		}
		time.Sleep(real)
	}
	if backoff *= 2; backoff > stallBackoffMax {
		backoff = stallBackoffMax
	}
	return backoff
}

// admitWriter gates a NEW write transaction on the space watermarks.
// Above hard it admits immediately (kicking an urgent checkpoint if
// below soft); below hard it stalls with backoff until checkpointing
// frees space, the deadline expires (ErrBusy), or exhaustion is proven
// permanent (ErrDegraded latch). Callers hold no locks — the stall must
// not block the checkpointer, readers, or the in-flight writer.
func (d *DB) admitWriter(ctx context.Context) error {
	p := d.pressure
	if p == nil {
		return nil
	}
	if a := p.avail(); a >= p.hard {
		if a < p.soft {
			d.urgentCheckpoint()
		}
		return nil
	}
	dl := d.newDeadline(ctx)
	d.plat.Metrics.Inc(metrics.PressureStalls, 1)
	backoff := stallBackoffMin
	for {
		if err := d.Degraded(); err != nil {
			return err
		}
		drained := d.jrn.FramesSinceCheckpoint() == 0
		d.urgentCheckpoint()
		if p.avail() >= p.hard {
			return nil
		}
		if drained {
			// The log held nothing to checkpoint and available space is
			// still below the hard watermark: the space is owned by
			// checkpointed state or other heap users, and no amount of
			// checkpointing can free it. Stalling forever would hang every
			// writer — latch read-only instead.
			d.degrade(fmt.Errorf("NVRAM heap exhausted: log empty, %d pages available, hard watermark %d",
				p.avail(), p.hard))
			return d.Degraded()
		}
		if err := dl.expired("begin-admission"); err != nil {
			d.plat.Metrics.Inc(metrics.CommitTimeouts, 1)
			return err
		}
		// Gray-failure escalation: if the background checkpointer is
		// STALLED — armed with pending rounds but silent past its health
		// budget — more stalling cannot help; the component that frees
		// space is itself wedged (a gray-slow fsync, a degraded device).
		// Shed the write cleanly instead of hanging Begin, which with
		// CommitTimeout=0 would otherwise stall unboundedly behind a
		// fault the deadline machinery never sees.
		if d.ckptKick != nil && d.health.Tracker("checkpointer").State() == health.Stalled {
			d.plat.Metrics.Inc(metrics.CommitTimeouts, 1)
			return dl.busy("checkpointer-stalled",
				errors.New("background checkpointer stalled past health budget"))
		}
		backoff = d.stallStep(backoff)
	}
}

// urgentCheckpoint starts a checkpoint round ahead of CheckpointLimit:
// with a background checkpointer it only kicks the goroutine (the loop
// also drains on the soft watermark); inline it try-acquires the writer
// slot and checkpoints synchronously. A busy slot or an open snapshot
// defers to the caller's re-probe loop.
func (d *DB) urgentCheckpoint() {
	if d.Degraded() != nil || d.jrn.FramesSinceCheckpoint() == 0 {
		return
	}
	d.plat.Metrics.Inc(metrics.UrgentCheckpoints, 1)
	if d.ckptKick != nil {
		d.kickCheckpoint()
		return
	}
	if !d.tryAcquireSlot() {
		return
	}
	defer d.releaseSlot()
	_ = d.checkpointLocked()
}

// flushSolo commits one transaction's frames through the journal,
// absorbing NVRAM exhaustion: ErrLogFull is returned by the journal
// before any NVRAM mutation (the commit-time reservation failed), so
// the flush can checkpoint, back off and retry until space frees, the
// deadline expires (ErrBusy — the caller rolls the pager back), or
// exhaustion is proven permanent (ErrDegraded latch). Called with the
// writer slot held.
func (d *DB) flushSolo(dl deadline, frames []pager.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	jrn := d.pg.Journal() // the pager's journal: fault wrappers included
	err := jrn.CommitTransaction(frames)
	if err == nil || !errors.Is(err, core.ErrLogFull) {
		return err
	}
	d.plat.Metrics.Inc(metrics.PressureStalls, 1)
	backoff := stallBackoffMin
	for {
		// Sampled before the checkpoint: if the log held nothing to free
		// on the previous round and the commit still does not fit, no
		// future checkpoint can ever make it fit.
		drained := d.jrn.FramesSinceCheckpoint() == 0
		if rerr := d.reclaim(); rerr != nil {
			return rerr
		}
		err = jrn.CommitTransaction(frames)
		if err == nil || !errors.Is(err, core.ErrLogFull) {
			return err
		}
		if drained {
			d.degrade(fmt.Errorf("NVRAM heap exhausted: %v", err))
			return d.Degraded()
		}
		if derr := dl.expired("commit-log-full"); derr != nil {
			d.plat.Metrics.Inc(metrics.CommitTimeouts, 1)
			return derr
		}
		backoff = d.stallStep(backoff)
	}
}

// reclaim runs one incremental checkpoint round for the commit-path
// retry loops. Those loops already hold the writer slot and possibly
// gc.mu, so it must not call Checkpoint/checkpointLocked (which take
// them); the incremental journal serializes internally and consults the
// reader gate. A round deferred by an open snapshot returns nil — the
// caller backs off and retries as the reader closes.
func (d *DB) reclaim() error {
	ij, ok := d.jrn.(pager.IncrementalJournal)
	if !ok || d.jrn.FramesSinceCheckpoint() == 0 {
		return nil
	}
	d.plat.Metrics.Inc(metrics.UrgentCheckpoints, 1)
	err := ij.CheckpointIncremental(d.ckptGate)
	if errors.Is(err, pager.ErrCheckpointPending) {
		return nil
	}
	return err
}
