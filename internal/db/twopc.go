// Two-phase commit front-end for cross-shard transactions. A sharded
// deployment runs one DB per shard; a transaction touching several
// shards opens one Tx per shard, Prepares them all, persists a single
// decide record (the coordinator's job — see internal/shard), then
// Completes each. The per-shard half implemented here maps directly
// onto the journal's prepared-transaction API (core.PrepareTransaction
// etc.): Prepare makes the shard's frames durable-but-provisional while
// the transaction keeps its writer slot and open pager transaction, so
// Complete and Abort are cheap, local and cannot hit NVRAM exhaustion.
package db

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// ErrNotPrepared is returned by CompletePrepared/AbortPrepared on a
// transaction that has not been through a successful Prepare.
var ErrNotPrepared = errors.New("db: transaction is not prepared")

// ErrPrepared is returned by Commit on a prepared transaction: its fate
// belongs to the coordinator, so only CompletePrepared or AbortPrepared
// may resolve it.
var ErrPrepared = errors.New("db: transaction is prepared; use CompletePrepared or AbortPrepared")

// preparedJournal is the journal surface Prepare needs. The NVWAL
// journal implements it; rollback journals do not, so Prepare on a
// JournalRollback database fails cleanly.
type preparedJournal interface {
	PrepareTransaction(frames []pager.Frame, gtx uint64) error
	CompletePrepared(gtx uint64) error
	AbortPrepared(gtx uint64) error
}

// Prepare runs phase one of 2PC for this shard: the transaction's
// frames are appended to the journal under a provisional mark carrying
// the global transaction id gtx, durable but invisible. On success the
// transaction stays open — it holds the writer slot and its pager
// transaction until CompletePrepared or AbortPrepared — and the journal
// refuses any other append, so the prepared frames remain the log tail
// for recovery to find. On failure the transaction is rolled back
// entirely, like a failed Commit.
//
// NVRAM exhaustion is absorbed the same way Commit absorbs it:
// ErrLogFull is pre-mutation, so Prepare checkpoints, backs off and
// retries until space frees, the deadline expires (ErrBusy), or
// exhaustion is proven permanent (ErrDegraded).
func (tx *Tx) Prepare(gtx uint64) error {
	if err := tx.guard(); err != nil {
		return err
	}
	if tx.prepared {
		return fmt.Errorf("db: transaction already prepared (gtx %d)", tx.gtx)
	}
	d := tx.db
	pj, ok := d.pg.Journal().(preparedJournal)
	if !ok {
		tx.Rollback()
		return fmt.Errorf("db: journal %T does not support prepared transactions", d.pg.Journal())
	}
	// Drain any queued group first: this writer holds the slot and is
	// about to stop committing through the queue, so a group waiting on
	// it would stall forever.
	if err := d.gc.flushPending(); err != nil {
		tx.Rollback()
		return err
	}
	d.chargeCPU(d.opts.CPU.TxnFixed)
	frames, err := d.pg.PrepareCommit()
	if err != nil {
		tx.Rollback()
		return err
	}
	ctx := tx.ctx
	if err := d.prepareSolo(d.newDeadline(ctx), pj, frames, gtx); err != nil {
		tx.Rollback()
		return fmt.Errorf("pager: prepare failed, transaction rolled back: %w", err)
	}
	tx.prepared = true
	tx.gtx = gtx
	return nil
}

// prepareSolo is flushSolo for the prepare path: one prepared append
// with the checkpoint/backoff retry on ErrLogFull. Called with the
// writer slot held. A failed prepare leaves no pending state in the
// journal, so reclaim's checkpoint rounds are never refused here.
func (d *DB) prepareSolo(dl deadline, pj preparedJournal, frames []pager.Frame, gtx uint64) error {
	err := pj.PrepareTransaction(frames, gtx)
	if err == nil || !errors.Is(err, core.ErrLogFull) {
		return err
	}
	d.plat.Metrics.Inc(metrics.PressureStalls, 1)
	backoff := stallBackoffMin
	for {
		drained := d.jrn.FramesSinceCheckpoint() == 0
		if rerr := d.reclaim(); rerr != nil {
			return rerr
		}
		err = pj.PrepareTransaction(frames, gtx)
		if err == nil || !errors.Is(err, core.ErrLogFull) {
			return err
		}
		if drained {
			d.degrade(fmt.Errorf("NVRAM heap exhausted: %v", err))
			return d.Degraded()
		}
		if derr := dl.expired("prepare-log-full"); derr != nil {
			d.plat.Metrics.Inc(metrics.CommitTimeouts, 1)
			return derr
		}
		backoff = d.stallStep(backoff)
	}
}

// CompletePrepared commits a prepared transaction after the
// coordinator's decide record is durable: the provisional mark flips to
// a commit mark, the frames publish, and the transaction closes like a
// committed one (sequence number assigned, slot released, scrub and
// auto-checkpoint nudged).
func (tx *Tx) CompletePrepared() error {
	if !tx.prepared || tx.done {
		return ErrNotPrepared
	}
	d := tx.db
	pj := d.pg.Journal().(preparedJournal)
	if err := pj.CompletePrepared(tx.gtx); err != nil {
		// The journal still holds the prepared transaction (or is
		// broken); the caller may retry or abort. Nothing released.
		return err
	}
	tx.done = true
	tx.prepared = false
	gc := d.gc
	gc.mu.Lock()
	gc.nextSeq++
	tx.seq = gc.nextSeq
	gc.mu.Unlock()
	d.pg.FinishCommit()
	d.releaseSlot()
	if tx.ownReg {
		gc.unregister()
	}
	d.maybeKickScrub()
	return d.maybeAutoCheckpoint()
}

// AbortPrepared rolls a prepared transaction back after the coordinator
// decides abort (or a sibling shard's prepare fails): the provisional
// frames are unwound from the journal, the pager transaction rolls
// back, and the slot is released. The provisional mark was never a
// commit, so nothing was ever visible.
func (tx *Tx) AbortPrepared() error {
	if !tx.prepared || tx.done {
		return ErrNotPrepared
	}
	d := tx.db
	pj := d.pg.Journal().(preparedJournal)
	err := pj.AbortPrepared(tx.gtx)
	tx.done = true
	tx.prepared = false
	d.pg.Rollback()
	d.releaseSlot()
	if tx.ownReg {
		d.gc.unregister()
	}
	return err
}

// Gtx returns the global transaction id set by a successful Prepare.
func (tx *Tx) Gtx() uint64 { return tx.gtx }
