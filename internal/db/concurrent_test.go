package db

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// concurrentOpts returns a Concurrent-mode NVWAL configuration with
// auto-checkpointing disabled (the tests checkpoint explicitly).
func concurrentOpts(group int) Options {
	return Options{
		Journal:         JournalNVWAL,
		NVWAL:           core.VariantUHLSDiff(),
		Concurrent:      true,
		GroupCommit:     group,
		CheckpointLimit: -1,
	}
}

// TestConcurrentReadersWriterCheckpointer is the -race stress test for
// the multi-reader/single-writer protocol: one writer commits keys in
// sequence, several snapshot readers verify the prefix invariant (a
// snapshot with n records sees exactly keys 0..n-1), and a checkpointer
// keeps trying to truncate the log underneath them.
func TestConcurrentReadersWriterCheckpointer(t *testing.T) {
	const (
		txns    = 120
		readers = 4
	)
	d, _ := newDB(t, concurrentOpts(1))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+2)
	done := make(chan struct{})

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		for i := 0; i < txns; i++ {
			tx, err := d.Begin()
			if err != nil {
				errs <- err
				return
			}
			if err := tx.Insert("t", []byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() { // snapshot readers
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap, err := d.BeginRead()
				if err != nil {
					errs <- err
					return
				}
				n, err := snap.Count("t")
				if err != nil {
					snap.Close()
					errs <- err
					return
				}
				// Prefix invariant: exactly keys 0..n-1 are visible.
				if n > 0 {
					if _, ok, err := snap.Get("t", []byte(fmt.Sprintf("k%05d", n-1))); err != nil || !ok {
						snap.Close()
						errs <- fmt.Errorf("snapshot with %d records misses key %d (%v)", n, n-1, err)
						return
					}
				}
				if _, ok, _ := snap.Get("t", []byte(fmt.Sprintf("k%05d", n))); ok {
					snap.Close()
					errs <- fmt.Errorf("snapshot with %d records sees key %d", n, n)
					return
				}
				snap.Close()
			}
		}()
	}

	wg.Add(1)
	go func() { // checkpointer
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := d.Checkpoint(); err != nil && !errors.Is(err, ErrBusySnapshot) {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := d.Count("t"); err != nil || n != txns {
		t.Fatalf("final count = %d (%v), want %d", n, err, txns)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAnonymousWriters hammers blocking Begin from many
// goroutines without writer sessions: every transaction must commit,
// none may observe another's in-flight state.
func TestConcurrentAnonymousWriters(t *testing.T) {
	const (
		goroutines = 6
		txns       = 30
	)
	d, _ := newDB(t, concurrentOpts(4))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				tx, err := d.Begin()
				if err != nil {
					errs <- err
					return
				}
				key := []byte(fmt.Sprintf("g%02d-%04d", g, i))
				if err := tx.Insert("t", key, []byte("v")); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, _ := d.Count("t"); n != goroutines*txns {
		t.Fatalf("count = %d, want %d", n, goroutines*txns)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// runSessions drives w writer sessions of txns transactions each and
// returns the persist barriers and group commits consumed.
func runSessions(t *testing.T, d *DB, m *metrics.Counters, w, txns int) (barriers, groups int64) {
	t.Helper()
	before := m.Snapshot()
	// Register every session before any goroutine commits: group commit
	// is deterministic over *registered* writers, so registration must
	// precede the first commit or early committers run solo.
	sessions := make([]*Writer, w)
	for s := range sessions {
		sessions[s] = d.Writer()
	}
	var wg sync.WaitGroup
	errs := make(chan error, w)
	for s := 0; s < w; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := sessions[s]
			defer sess.Close()
			for i := 0; i < txns; i++ {
				tx, err := sess.Begin()
				if err != nil {
					errs <- err
					return
				}
				key := []byte(fmt.Sprintf("s%02d-%04d", s, i))
				if err := tx.Insert("t", key, []byte("payload")); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	delta := m.Snapshot().Sub(before)
	return delta.Count(metrics.PersistBarrier), delta.Count(metrics.GroupCommits)
}

// TestGroupCommitCorrectness runs W sessions × T transactions under
// group commit and verifies nothing is lost and the batching actually
// happened.
func TestGroupCommitCorrectness(t *testing.T) {
	const (
		sessions = 4
		txns     = 25
	)
	d, plat := newDB(t, concurrentOpts(8))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	_, groups := runSessions(t, d, plat.Metrics, sessions, txns)
	if n, _ := d.Count("t"); n != sessions*txns {
		t.Fatalf("count = %d, want %d", n, sessions*txns)
	}
	if groups == 0 {
		t.Fatal("no group commit happened despite 4 concurrent sessions")
	}
	if got := plat.Metrics.Count(metrics.Transactions); got < int64(sessions*txns) {
		t.Fatalf("Transactions metric = %d, want >= %d (group commits must credit every member)",
			got, sessions*txns)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	// Everything survives an explicit checkpoint.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Count("t"); n != sessions*txns {
		t.Fatal("records lost across checkpoint")
	}
}

// TestGroupCommitAmortizesBarriers is the Algorithm 1 commit-flag
// payoff: the same workload with group commit must spend fewer persist
// barriers than with per-transaction commits.
func TestGroupCommitAmortizesBarriers(t *testing.T) {
	const (
		sessions = 4
		txns     = 25
	)
	run := func(group int) (int64, int64) {
		d, plat := newDB(t, concurrentOpts(group))
		if err := d.CreateTable("t"); err != nil {
			t.Fatal(err)
		}
		return runSessions(t, d, plat.Metrics, sessions, txns)
	}
	soloBarriers, _ := run(1)
	groupBarriers, groups := run(8)
	if groups == 0 {
		t.Fatal("grouped run formed no groups")
	}
	if groupBarriers >= soloBarriers {
		t.Fatalf("group commit did not amortize persist barriers: solo %d, grouped %d",
			soloBarriers, groupBarriers)
	}
	t.Logf("persist barriers: solo=%d grouped=%d (%.1f%%), groups=%d",
		soloBarriers, groupBarriers, 100*float64(groupBarriers)/float64(soloBarriers), groups)
}

// TestGroupTailFlush: sessions that commit once and close must not
// strand a partial group — the last unregister flushes the tail.
func TestGroupTailFlush(t *testing.T) {
	const sessions = 3
	d, _ := newDB(t, concurrentOpts(8)) // group size larger than session count
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	writers := make([]*Writer, sessions)
	for s := range writers {
		writers[s] = d.Writer()
	}
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := writers[s]
			defer sess.Close()
			tx, err := sess.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Insert("t", []byte(fmt.Sprintf("k%d", s)), []byte("v")); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}(s)
	}
	wg.Wait() // hangs here if the tail group never flushes
	if n, _ := d.Count("t"); n != sessions {
		t.Fatalf("count = %d, want %d", n, sessions)
	}
}

// TestGroupFlushFailureDisablesEngine: once a group flush fails, the
// affected transactions' pre-images are gone and later state builds on
// them, so the engine must refuse further writes rather than corrupt.
func TestGroupFlushFailureDisablesEngine(t *testing.T) {
	const sessions = 2
	d, _ := newDB(t, concurrentOpts(2))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	d.gc.jrn = &faultJournal{Journal: d.jrn, failCommits: 99}

	writers := make([]*Writer, sessions)
	for s := range writers {
		writers[s] = d.Writer()
	}
	var wg sync.WaitGroup
	commitErrs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := writers[s]
			defer sess.Close()
			tx, err := sess.Begin()
			if err != nil {
				commitErrs[s] = err
				return
			}
			if err := tx.Insert("t", []byte(fmt.Sprintf("k%d", s)), []byte("v")); err != nil {
				commitErrs[s] = err
				return
			}
			commitErrs[s] = tx.Commit()
		}(s)
	}
	wg.Wait()
	for s, err := range commitErrs {
		if err == nil {
			t.Fatalf("session %d committed through a failing journal", s)
		}
	}
	// The engine is wedged: no further write transactions.
	if _, err := d.Begin(); err == nil {
		t.Fatal("Begin succeeded after a failed group flush")
	} else if !errors.Is(err, errInjected) {
		t.Fatalf("Begin error = %v, want the latched flush failure", err)
	}
	if err := d.CreateTable("u"); err == nil {
		t.Fatal("CreateTable succeeded after a failed group flush")
	}
}

// TestCoalesceGroups pins the frame-merge semantics group commit relies
// on: the last image per page wins and output is ordered by page.
func TestCoalesceGroups(t *testing.T) {
	mk := func(pgno uint32, b byte) pager.Frame {
		return pager.Frame{Pgno: pgno, Data: []byte{b}}
	}
	out := pager.CoalesceGroups([][]pager.Frame{
		{mk(3, 'a'), mk(1, 'b')},
		{mk(3, 'c')},
		{mk(2, 'd'), mk(1, 'e')},
	})
	want := []pager.Frame{mk(1, 'e'), mk(2, 'd'), mk(3, 'c')}
	if len(out) != len(want) {
		t.Fatalf("coalesced to %d frames, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i].Pgno != want[i].Pgno || out[i].Data[0] != want[i].Data[0] {
			t.Fatalf("frame %d = {%d %q}, want {%d %q}",
				i, out[i].Pgno, out[i].Data, want[i].Pgno, want[i].Data)
		}
	}
}
