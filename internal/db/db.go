// Package db is the embedded database engine tying the reproduction
// together — the role SQLite plays in the paper. It exposes a
// serverless, single-writer transactional key-value API over named
// tables (SQLite's B-trees), with the journal mode selecting where the
// write-ahead log lives:
//
//   - JournalWAL: stock SQLite WAL on the EXT4 flash file system;
//   - JournalOptimizedWAL: the paper's fixed WAL baseline (aligned
//     frames via the early-split B+tree, WALDIO pre-allocation);
//   - JournalNVWAL: the paper's contribution, the log in NVRAM.
//
// Query-processing CPU time dominates SQLite transactions (§5.1:
// "SQLite throughput is governed more by the computation performance
// than by the I/O performance"), so the engine charges a calibrated CPU
// cost per operation and per commit to the virtual clock; journaling
// costs then shift throughput exactly as the paper's figures show.
package db

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/dbfile"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/pager"
	"repro/internal/platform"
	"repro/internal/rollback"
	"repro/internal/wal"
)

// JournalMode selects the write-ahead-log implementation.
type JournalMode int

const (
	// JournalWAL is stock SQLite WAL on flash.
	JournalWAL JournalMode = iota
	// JournalOptimizedWAL is the §5.4 optimized flash WAL.
	JournalOptimizedWAL
	// JournalNVWAL keeps the log in NVRAM.
	JournalNVWAL
	// JournalRollback is SQLite's classic rollback-journal (DELETE)
	// mode, the pre-WAL baseline of §1/§2.
	JournalRollback
)

func (j JournalMode) String() string {
	switch j {
	case JournalOptimizedWAL:
		return "optimized-wal"
	case JournalNVWAL:
		return "nvwal"
	case JournalRollback:
		return "rollback"
	default:
		return "wal"
	}
}

// CPUProfile is the query-execution cost model of one platform.
type CPUProfile struct {
	// TxnFixed is charged once per transaction (parsing, locking,
	// commit processing).
	TxnFixed time.Duration
	// PerOp is charged per record operation (B-tree descent, cell
	// manipulation).
	PerOp time.Duration
}

// CPU profiles calibrated against the paper's anchors: 424 µs per
// single-insert transaction on Tuna (§5.1), and 5812 inserts/s for
// NVWAL UH+LS+Diff at 2 µs NVRAM latency on the Nexus 5 (§5.4).
var (
	CPUTuna   = CPUProfile{TxnFixed: 235 * time.Microsecond, PerOp: 170 * time.Microsecond}
	CPUNexus5 = CPUProfile{TxnFixed: 85 * time.Microsecond, PerOp: 62 * time.Microsecond}
)

// Options configures Open.
type Options struct {
	Journal JournalMode
	// NVWAL configures the NVRAM log (JournalNVWAL only). Name defaults
	// to "nvwal:<dbname>".
	NVWAL core.Config
	// WALPrealloc overrides the optimized WAL's initial pre-allocation
	// size in pages (0 selects the paper's 8, which doubles as it
	// fills, §5.4).
	WALPrealloc int
	// CheckpointLimit is the frame count that triggers an automatic
	// checkpoint after commit (SQLite's default 1000). Negative
	// disables auto-checkpointing; 0 selects the default.
	CheckpointLimit int
	// CPU is the platform cost model; zero value charges no CPU time.
	CPU CPUProfile
	// PageSize defaults to 4096.
	PageSize int
	// Concurrent enables the goroutine-safe multi-reader/single-writer
	// protocol: Begin blocks until the writer slot frees (instead of
	// returning ErrTxnOpen), non-snapshot reads serialize against the
	// writer, and snapshot ReadTxs stay lock-free. Off, the engine keeps
	// its legacy single-goroutine contract: a second Begin while a
	// transaction is open is a programming error reported as ErrTxnOpen.
	Concurrent bool
	// GroupCommit batches up to this many concurrently committing write
	// transactions into one journal flush — Algorithm 1's commit flag:
	// all the group's frames are logged, only the final one carries the
	// commit mark, so one flush batch, one persist barrier and one
	// commit-mark persist cover the whole group. Atomicity coarsens to
	// the group: a crash loses the whole in-flight group, never a prefix.
	// Values <= 1 commit each transaction individually. Requires
	// Concurrent; groups only form among registered Writer sessions (or
	// overlapping anonymous writers), and a group flushes as soon as
	// every registered writer is waiting in it, so K writers never wait
	// for an absent (K+1)th.
	GroupCommit int
	// BackgroundCheckpoint moves auto-checkpointing off the commit path:
	// a dedicated goroutine runs the journal's incremental checkpoint
	// (page writeback and fsync with no writer lock held) whenever the
	// log passes CheckpointLimit, retrying when open snapshot readers
	// defer it, instead of piggybacking blocking checkpoints on commits.
	// Requires Concurrent and a journal mode with incremental checkpoint
	// support (every WAL mode; not rollback). A background checkpoint
	// failure is latched and reported by Close.
	BackgroundCheckpoint bool
	// CommitTimeout bounds (in virtual time) how long a write may stall
	// under NVRAM-space backpressure: both the admission wait at Begin
	// when the heap is below the hard watermark, and the commit-side
	// retry when the journal reports the log full. On expiry the
	// operation fails with an error matching errors.Is(err, ErrBusy) and
	// the transaction is rolled back cleanly. 0 means no deadline —
	// stalls last until space frees or exhaustion is proven permanent
	// (ErrDegraded). JournalNVWAL only; other modes never stall.
	CommitTimeout time.Duration
	// ScrubEvery runs the background media scrubber (JournalNVWAL only):
	// after every N commits a dedicated goroutine audits the durable
	// image of the log's committed frames against their chained CRCs,
	// catching silent media rot while the volatile copies are still
	// intact. Bad frames trigger a checkpoint that rewrites the affected
	// pages from DRAM and retires the implicated NVRAM blocks into the
	// heap's quarantine. 0 disables scrubbing.
	ScrubEvery int
}

// DefaultCheckpointLimit matches SQLite's 1000-frame threshold (§2).
const DefaultCheckpointLimit = 1000

// Errors.
var (
	ErrTxnOpen     = errors.New("db: a write transaction is already open")
	ErrNoTxn       = errors.New("db: no open transaction")
	ErrNoTable     = errors.New("db: no such table")
	ErrTableExists = errors.New("db: table already exists")
	// ErrCheckpointDeferred wraps an auto-checkpoint failure after a
	// successful commit. The transaction IS durable in the log — callers
	// must not treat it as aborted; the checkpoint will be retried after
	// a later commit or can be run explicitly.
	ErrCheckpointDeferred = errors.New("db: transaction committed, auto-checkpoint deferred")
)

// Catalog layout within page 1, after the pager's reserved header:
//
//	[64:66)  table count (uint16)
//	then per table: 24-byte zero-padded name + 4-byte root page
const (
	catalogOff   = pager.HeaderReserved
	tableNameLen = 24
	tableEntry   = tableNameLen + 4
)

// maxTables bounds the catalog to what fits in page 1.
func maxTables(pageSize int) int { return (pageSize - catalogOff - 2) / tableEntry }

// DB is one open database.
//
// Lock order (see DESIGN.md §8): writer slot → ckptMu → gc.mu → the
// journal's internal lock. Snapshot ReadTxs never take the writer slot;
// they touch only the journal (read-locked) and the database file.
type DB struct {
	plat *platform.Platform
	opts Options
	name string

	// dbf is the database file behind the transient-retry wrapper; all
	// consumers (pager, journal backfill, checkpoint) share it.
	dbf *retryFile
	jrn pager.Journal
	pg  *pager.Pager

	// degradedErr latches the degraded read-only mode (ErrDegraded):
	// set at open when salvage found database-file damage, or at runtime
	// by the first permanent device error on the file.
	degradedMu  sync.Mutex
	degradedErr error

	// treeMu guards the trees cache; the *btree.Tree values themselves
	// are only used while holding the writer slot.
	treeMu sync.Mutex
	trees  map[string]*btree.Tree

	// slot is the writer slot: whoever holds the token owns the pager
	// and may run a write transaction, a catalog change, a non-snapshot
	// read, or a checkpoint. Legacy mode try-acquires it (ErrTxnOpen
	// when busy); Concurrent mode blocks.
	slot chan struct{}
	// readers counts open snapshot read transactions; a positive count
	// pins the log against checkpointing.
	readers atomic.Int64
	// ckptMu makes BeginRead's register-and-mark atomic against the
	// checkpoint gate's mark scan, so a reader can never take a mark
	// that a concurrent checkpoint immediately invalidates. It is never
	// held across a journal call (the journal consults the gate, which
	// takes it).
	ckptMu sync.Mutex
	// openMarks counts open snapshot readers per mark (guarded by
	// ckptMu); the checkpoint gate refuses any watermark above an open
	// mark.
	openMarks map[int]int
	// gc is the writer queue implementing group commit.
	gc *groupCommitter
	// pressure holds the NVRAM free-space watermarks (JournalNVWAL
	// only; nil otherwise — no backpressure).
	pressure *pressureState

	// MVCC session page allocator. Sessions allocate page numbers
	// outside any pager transaction, so uniqueness is arbitrated by
	// allocTop (monotone high-water page number, kept >= the committed
	// page count) with rolled-back session pages recycled through
	// allocPool. mvccAlloc records that the pager's extension hook is
	// installed; it is only read and written under the writer slot. The
	// hook is installed lazily on the first BeginConcurrent so purely
	// legacy workloads keep exact page-count behaviour on rollback.
	allocTop  atomic.Uint32
	allocMu   sync.Mutex
	allocPool []uint32
	mvccAlloc bool

	// Background checkpointer (Options.BackgroundCheckpoint): commits
	// and closing readers kick the goroutine instead of checkpointing
	// inline. A checkpoint error is latched into ckptErr.
	ckptKick  chan struct{}
	ckptQuit  chan struct{}
	ckptDone  chan struct{}
	closeOnce sync.Once
	ckptErrMu sync.Mutex
	ckptErr   error

	// Background media scrubber (Options.ScrubEvery): commits count
	// toward scrubSince and kick the goroutine at the threshold.
	scrubKick  chan struct{}
	scrubQuit  chan struct{}
	scrubDone  chan struct{}
	scrubSince atomic.Int64

	// health watches the background components (checkpointer, group
	// flusher, scrubber) for gray failures: progress heartbeats plus
	// latency EWMAs, on the platform's virtual clock. Admission control
	// consults it so a silently stalled checkpointer surfaces as a
	// prompt clean ErrBusy instead of an unbounded Begin stall.
	health *health.Monitor
}

// Open opens (creating if necessary) the database file name on the
// platform's flash file system, with the journal per opts. Crash
// recovery runs automatically: the journal replays its committed
// frames. When recovery finds the database file itself damaged beyond
// the log's ability to repair, Open returns BOTH a usable handle and an
// error matching errors.Is(err, ErrDegraded): the handle serves the
// last good snapshot read-only.
func Open(plat *platform.Platform, name string, opts Options) (*DB, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = 4096
	}
	if opts.CheckpointLimit == 0 {
		opts.CheckpointLimit = DefaultCheckpointLimit
	}
	if opts.GroupCommit > 1 && !opts.Concurrent {
		return nil, errors.New("db: GroupCommit > 1 requires Concurrent mode")
	}
	if opts.BackgroundCheckpoint && !opts.Concurrent {
		return nil, errors.New("db: BackgroundCheckpoint requires Concurrent mode")
	}
	f, err := plat.FS.OpenOrCreate(name, "db")
	if err != nil {
		return nil, err
	}
	d := &DB{
		plat:      plat,
		opts:      opts,
		name:      name,
		trees:     make(map[string]*btree.Tree),
		slot:      make(chan struct{}, 1),
		openMarks: make(map[int]int),
	}
	d.health = health.NewMonitor(health.Options{
		Now:     plat.Clock.Now,
		Metrics: plat.Metrics,
	})
	d.dbf = newRetryFile(dbfile.New(f, opts.PageSize), plat.Clock, plat.Metrics, d.degrade)
	switch opts.Journal {
	case JournalNVWAL:
		cfg := opts.NVWAL
		if cfg.Name == "" {
			cfg.Name = "nvwal:" + name
		}
		d.jrn, err = core.Open(plat.Heap, d.dbf, cfg, plat.Metrics)
		d.pressure = newPressureState(plat.Heap)
	case JournalOptimizedWAL:
		d.jrn, err = wal.Open(plat.FS, name+"-wal", d.dbf,
			wal.Options{Mode: wal.ModeOptimized, InitialPrealloc: opts.WALPrealloc}, plat.Metrics)
	case JournalRollback:
		d.jrn, err = rollback.Open(plat.FS, name, d.dbf, plat.Metrics)
	default:
		d.jrn, err = wal.Open(plat.FS, name+"-wal", d.dbf, wal.Options{Mode: wal.ModeStock}, plat.Metrics)
	}
	if err != nil {
		return nil, err
	}
	d.pg, err = pager.Open(d.dbf, d.jrn)
	if err != nil {
		return nil, err
	}
	size := opts.GroupCommit
	if size < 1 {
		size = 1
	}
	d.gc = &groupCommitter{jrn: d.jrn, size: size, db: d}
	if opts.BackgroundCheckpoint {
		if _, ok := d.jrn.(pager.IncrementalJournal); !ok {
			return nil, fmt.Errorf("db: journal mode %s does not support background checkpointing", opts.Journal)
		}
		if opts.CheckpointLimit > 0 {
			d.ckptKick = make(chan struct{}, 1)
			d.ckptQuit = make(chan struct{})
			d.ckptDone = make(chan struct{})
			go d.checkpointLoop()
		}
	}
	if opts.ScrubEvery > 0 {
		nv, ok := d.jrn.(*core.NVWAL)
		if !ok {
			return nil, errors.New("db: ScrubEvery requires JournalNVWAL")
		}
		d.scrubKick = make(chan struct{}, 1)
		d.scrubQuit = make(chan struct{})
		d.scrubDone = make(chan struct{})
		go d.scrubLoop(nv)
	}
	// Recovery may have found the database file itself damaged — pages
	// the log cannot reconstruct. The handle still opens (the last good
	// snapshot stays readable through the log and cache), but writes are
	// refused: Open returns it together with an ErrDegraded error.
	if rep := d.Salvage(); rep != nil && rep.DBFileDamaged {
		d.degrade(fmt.Errorf("recovery found database-file damage (%s)", rep))
		return d, d.Degraded()
	}
	return d, nil
}

// acquireSlot claims the writer slot: blocking in Concurrent mode,
// try-only (ErrTxnOpen) in the legacy single-goroutine mode.
func (d *DB) acquireSlot() error {
	if d.opts.Concurrent {
		d.slot <- struct{}{}
		return nil
	}
	select {
	case d.slot <- struct{}{}:
		return nil
	default:
		return ErrTxnOpen
	}
}

// tryAcquireSlot claims the slot only if it is free.
func (d *DB) tryAcquireSlot() bool {
	select {
	case d.slot <- struct{}{}:
		return true
	default:
		return false
	}
}

func (d *DB) releaseSlot() { <-d.slot }

// readLock serializes a non-snapshot read against the writer in
// Concurrent mode. Legacy mode returns a no-op release: single-
// goroutine callers traditionally read mid-transaction (the SQL layer
// scans inside its own statements), and nothing runs concurrently.
func (d *DB) readLock() func() {
	if !d.opts.Concurrent {
		return func() {}
	}
	d.slot <- struct{}{}
	return d.releaseSlot
}

// reserved returns the B+tree per-page reserve. The early-split
// algorithm is applied for the optimized WAL (24-byte tail, §5.4) and
// for NVWAL ("We implemented the same split algorithm for NVWAL") —
// NVWAL reserves frame header + block link so two full-page frames fit
// one 8 KB user-heap block (§3.3). Stock WAL keeps SQLite's original
// layout.
func (d *DB) reserved() int {
	switch d.opts.Journal {
	case JournalWAL, JournalRollback:
		return 0
	case JournalNVWAL:
		return core.RecommendedPageReserve
	default:
		return btree.ReservedTail
	}
}

// Metrics returns the shared metrics sink.
func (d *DB) Metrics() *metrics.Counters { return d.plat.Metrics }

// Journal exposes the underlying journal (for experiment accounting).
func (d *DB) Journal() pager.Journal { return d.jrn }

// chargeCPU advances the virtual clock by the cost-model duration.
func (d *DB) chargeCPU(dur time.Duration) {
	if dur <= 0 {
		return
	}
	d.plat.Clock.Advance(dur)
	d.plat.Metrics.AddTime(metrics.TimeCPU, dur)
}

// readCatalog parses the table catalog out of page 1.
func (d *DB) readCatalog() (map[string]uint32, error) {
	hdr, err := d.pg.Get(1)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	out := make(map[string]uint32, n)
	for i := 0; i < n; i++ {
		off := catalogOff + 2 + i*tableEntry
		name := strings.TrimRight(string(hdr[off:off+tableNameLen]), "\x00")
		root := binary.LittleEndian.Uint32(hdr[off+tableNameLen:])
		out[name] = root
	}
	return out, nil
}

// tree returns the B+tree handle for a table. Callers hold the writer
// slot (or run in the legacy single-goroutine mode).
func (d *DB) tree(table string) (*btree.Tree, error) {
	d.treeMu.Lock()
	t, ok := d.trees[table]
	d.treeMu.Unlock()
	if ok {
		return t, nil
	}
	cat, err := d.readCatalog()
	if err != nil {
		return nil, err
	}
	root, ok := cat[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	t = btree.New(d.pg, root, btree.Config{Reserved: d.reserved()})
	d.treeMu.Lock()
	d.trees[table] = t
	d.treeMu.Unlock()
	return t, nil
}

func (d *DB) cacheTree(table string, t *btree.Tree) {
	d.treeMu.Lock()
	d.trees[table] = t
	d.treeMu.Unlock()
}

func (d *DB) uncacheTree(table string) {
	d.treeMu.Lock()
	delete(d.trees, table)
	d.treeMu.Unlock()
}

// CreateTable creates a table in its own transaction. It cannot run
// inside an open write transaction (legacy mode reports ErrTxnOpen;
// Concurrent mode waits for the writer slot).
func (d *DB) CreateTable(table string) error {
	if err := d.Degraded(); err != nil {
		return err
	}
	if err := d.admitWriter(context.Background()); err != nil {
		return err
	}
	if err := d.acquireSlot(); err != nil {
		return err
	}
	if err := d.gc.bail(); err != nil {
		d.releaseSlot()
		return err
	}
	if len(table) == 0 || len(table) > tableNameLen {
		d.releaseSlot()
		return fmt.Errorf("db: table name must be 1..%d bytes", tableNameLen)
	}
	cat, err := d.readCatalog()
	if err != nil {
		d.releaseSlot()
		return err
	}
	if _, ok := cat[table]; ok {
		d.releaseSlot()
		return fmt.Errorf("%w: %q", ErrTableExists, table)
	}
	if len(cat) >= maxTables(d.opts.PageSize) {
		d.releaseSlot()
		return errors.New("db: catalog full")
	}
	d.pg.Begin()
	t, err := btree.Create(d.pg, btree.Config{Reserved: d.reserved()})
	if err != nil {
		d.pg.Rollback()
		d.releaseSlot()
		return err
	}
	hdr, err := d.pg.Get(1)
	if err != nil {
		d.pg.Rollback()
		d.releaseSlot()
		return err
	}
	d.pg.MarkDirty(1)
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	off := catalogOff + 2 + n*tableEntry
	copy(hdr[off:off+tableNameLen], make([]byte, tableNameLen))
	copy(hdr[off:], table)
	binary.LittleEndian.PutUint32(hdr[off+tableNameLen:], t.Root())
	binary.LittleEndian.PutUint16(hdr[catalogOff:], uint16(n+1))
	d.chargeCPU(d.opts.CPU.TxnFixed)
	d.cacheTree(table, t)
	if _, err := d.commitHeldTxn(d.newDeadline(context.Background())); err != nil { // releases the slot
		d.uncacheTree(table)
		return err
	}
	return nil
}

// DropTable deletes a table in its own transaction, releasing all of
// its pages to the freelist. It cannot run inside an open write
// transaction.
func (d *DB) DropTable(table string) error {
	if err := d.Degraded(); err != nil {
		return err
	}
	if err := d.admitWriter(context.Background()); err != nil {
		return err
	}
	if err := d.acquireSlot(); err != nil {
		return err
	}
	if err := d.gc.bail(); err != nil {
		d.releaseSlot()
		return err
	}
	cat, err := d.readCatalog()
	if err != nil {
		d.releaseSlot()
		return err
	}
	if _, ok := cat[table]; !ok {
		d.releaseSlot()
		return fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	t, err := d.tree(table)
	if err != nil {
		d.releaseSlot()
		return err
	}
	d.pg.Begin()
	if err := t.Drop(); err != nil {
		d.pg.Rollback()
		d.releaseSlot()
		return err
	}
	// Remove the catalog entry, compacting the table list.
	hdr, err := d.pg.Get(1)
	if err != nil {
		d.pg.Rollback()
		d.releaseSlot()
		return err
	}
	d.pg.MarkDirty(1)
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	for i := 0; i < n; i++ {
		off := catalogOff + 2 + i*tableEntry
		name := strings.TrimRight(string(hdr[off:off+tableNameLen]), "\x00")
		if name != table {
			continue
		}
		last := catalogOff + 2 + (n-1)*tableEntry
		copy(hdr[off:], hdr[off+tableEntry:last+tableEntry])
		for j := last; j < last+tableEntry; j++ {
			hdr[j] = 0
		}
		binary.LittleEndian.PutUint16(hdr[catalogOff:], uint16(n-1))
		break
	}
	d.chargeCPU(d.opts.CPU.TxnFixed)
	d.uncacheTree(table)
	_, err = d.commitHeldTxn(d.newDeadline(context.Background())) // releases the slot
	return err
}

// Tables lists the catalog in sorted name order.
func (d *DB) Tables() ([]string, error) {
	defer d.readLock()()
	cat, err := d.readCatalog()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(cat))
	for name := range cat {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// HasTable reports whether a table exists.
func (d *DB) HasTable(table string) bool {
	defer d.readLock()()
	cat, err := d.readCatalog()
	if err != nil {
		return false
	}
	_, ok := cat[table]
	return ok
}

// Tx is one write transaction. SQLite allows a single writer at a time
// (§4.1), which Begin enforces: the transaction holds the writer slot
// from Begin until Commit or Rollback.
type Tx struct {
	db     *DB
	ctx    context.Context // from BeginCtx; bounds Commit's stall too
	done   bool
	ownReg bool   // this txn registered itself with the group committer
	seq    uint64 // commit sequence number, set by a successful Commit
	// 2PC state (see twopc.go): a prepared transaction keeps its writer
	// slot and pager transaction until CompletePrepared/AbortPrepared.
	prepared bool
	gtx      uint64 // global transaction id from Prepare
}

// Seq returns the transaction's commit sequence number: 1-based,
// strictly increasing in journal-application order across all writers.
// Valid only after Commit returned nil; a crash-consistency oracle uses
// it to order acknowledged transactions without observing the journal.
func (tx *Tx) Seq() uint64 { return tx.seq }

// Begin opens a write transaction. In Concurrent mode it blocks until
// the current writer finishes; in legacy mode it returns ErrTxnOpen.
// Under NVRAM-space pressure Begin may stall at the hard watermark
// (see Options.CommitTimeout); BeginCtx bounds that stall with a
// context.
func (d *DB) Begin() (*Tx, error) { return d.BeginCtx(context.Background()) }

// BeginCtx is Begin with a context bounding the backpressure stall: if
// the heap is below the hard watermark and ctx is cancelled before
// checkpointing frees space, BeginCtx fails with an error matching
// errors.Is(err, ErrBusy). The context also bounds the commit-side
// stall of this transaction's Commit (CommitCtx overrides it).
func (d *DB) BeginCtx(ctx context.Context) (*Tx, error) {
	if err := d.Degraded(); err != nil {
		return nil, err
	}
	// Admission runs before any lock or registration: a stalled NEW
	// writer must not block the checkpointer, readers, or in-flight
	// writers.
	if err := d.admitWriter(ctx); err != nil {
		return nil, err
	}
	// Register before contending for the slot, so a group waiting for
	// stragglers knows this writer is on its way.
	d.gc.register()
	if err := d.acquireSlot(); err != nil {
		d.gc.unregister()
		return nil, err
	}
	if err := d.gc.bail(); err != nil {
		d.releaseSlot()
		d.gc.unregister()
		return nil, err
	}
	d.pg.Begin()
	return &Tx{db: d, ctx: ctx, ownReg: true}, nil
}

// Writer is a registered long-lived writer session. Registration is
// what makes group commit deterministic: the group committer flushes
// once every registered writer is waiting in the queue, so K sessions
// running transaction loops produce groups of exactly min(K, GroupCommit)
// regardless of goroutine scheduling. A session must keep committing
// (or Close) — an idle registered session stalls a waiting group.
type Writer struct {
	d      *DB
	closed bool
}

// Writer registers a writer session with the group committer.
func (d *DB) Writer() *Writer {
	d.gc.register()
	return &Writer{d: d}
}

// Begin opens a write transaction owned by the session.
func (w *Writer) Begin() (*Tx, error) { return w.BeginCtx(context.Background()) }

// BeginCtx is Begin with a context bounding the backpressure stall,
// like DB.BeginCtx.
func (w *Writer) BeginCtx(ctx context.Context) (*Tx, error) {
	if w.closed {
		return nil, errors.New("db: writer session closed")
	}
	if err := w.d.Degraded(); err != nil {
		return nil, err
	}
	if err := w.d.admitWriter(ctx); err != nil {
		return nil, err
	}
	if err := w.d.acquireSlot(); err != nil {
		return nil, err
	}
	if err := w.d.gc.bail(); err != nil {
		w.d.releaseSlot()
		return nil, err
	}
	w.d.pg.Begin()
	return &Tx{db: w.d, ctx: ctx}, nil
}

// Close unregisters the session, releasing any group waiting on it.
func (w *Writer) Close() {
	if w.closed {
		return
	}
	w.closed = true
	w.d.gc.unregister()
}

func (tx *Tx) guard() error {
	if tx.done {
		return ErrNoTxn
	}
	return nil
}

// Insert stores key/value in table, replacing an existing value.
func (tx *Tx) Insert(table string, key, value []byte) error {
	if err := tx.guard(); err != nil {
		return err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return err
	}
	tx.db.chargeCPU(tx.db.opts.CPU.PerOp)
	return t.Put(key, value)
}

// Update rewrites an existing record, reporting whether it existed.
func (tx *Tx) Update(table string, key, value []byte) (bool, error) {
	if err := tx.guard(); err != nil {
		return false, err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return false, err
	}
	tx.db.chargeCPU(tx.db.opts.CPU.PerOp)
	return t.Update(key, value)
}

// Delete removes a record, reporting whether it existed.
func (tx *Tx) Delete(table string, key []byte) (bool, error) {
	if err := tx.guard(); err != nil {
		return false, err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return false, err
	}
	tx.db.chargeCPU(tx.db.opts.CPU.PerOp)
	return t.Delete(key)
}

// Get reads a record, seeing the transaction's own writes.
func (tx *Tx) Get(table string, key []byte) ([]byte, bool, error) {
	if err := tx.guard(); err != nil {
		return nil, false, err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Scan visits table's records (including the transaction's own writes)
// in ascending key order until fn returns false.
func (tx *Tx) Scan(table string, fn func(key, value []byte) bool) error {
	if err := tx.guard(); err != nil {
		return err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return err
	}
	return t.Scan(fn)
}

// ScanRange visits records with start <= key < end (nil end = no upper
// bound), including the transaction's own writes.
func (tx *Tx) ScanRange(table string, start, end []byte, fn func(key, value []byte) bool) error {
	if err := tx.guard(); err != nil {
		return err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return err
	}
	return t.ScanRange(start, end, fn)
}

// ScanPrefix visits records whose key begins with prefix, including the
// transaction's own writes.
func (tx *Tx) ScanPrefix(table string, prefix []byte, fn func(key, value []byte) bool) error {
	if err := tx.guard(); err != nil {
		return err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return err
	}
	return t.ScanPrefix(prefix, fn)
}

// Count returns the number of records in table as the transaction sees
// it.
func (tx *Tx) Count(table string) (int, error) {
	if err := tx.guard(); err != nil {
		return 0, err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return 0, err
	}
	return t.Count()
}

// Commit durably commits the transaction through the journal (solo, or
// batched with concurrent committers when group commit is on), then
// auto-checkpoints if the log passed the frame limit. A journal failure
// rolls the transaction back — its dirty pages can never leak into the
// next transaction. An auto-checkpoint failure after a successful
// commit is reported wrapped in ErrCheckpointDeferred: the transaction
// IS durable. When the NVRAM heap is full, Commit stalls while
// checkpointing frees space; Options.CommitTimeout (or the context of
// BeginCtx/CommitCtx) bounds the stall with a clean ErrBusy rollback.
func (tx *Tx) Commit() error {
	ctx := tx.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return tx.CommitCtx(ctx)
}

// CommitCtx is Commit with an explicit context bounding the
// backpressure stall (overriding the one captured at BeginCtx).
func (tx *Tx) CommitCtx(ctx context.Context) error {
	if err := tx.guard(); err != nil {
		return err
	}
	if tx.prepared {
		return ErrPrepared
	}
	tx.done = true
	d := tx.db
	d.chargeCPU(d.opts.CPU.TxnFixed)
	seq, err := d.commitHeldTxn(d.newDeadline(ctx)) // releases the slot
	if tx.ownReg {
		d.gc.unregister()
	}
	if err != nil {
		return err
	}
	tx.seq = seq
	d.maybeKickScrub()
	return d.maybeAutoCheckpoint()
}

// Rollback abandons the transaction, restoring all pages. On a
// prepared transaction it aborts the prepare first (the journal holds
// provisional frames that must be unwound before the slot is freed).
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	if tx.prepared {
		_ = tx.AbortPrepared()
		return
	}
	tx.done = true
	tx.db.pg.Rollback()
	tx.db.releaseSlot()
	if tx.ownReg {
		tx.db.gc.unregister()
	}
}

// commitHeldTxn durably commits the pager's open write transaction and
// returns its commit sequence number (1-based, in journal-application
// order). Called with the writer slot held; the slot is released by the
// time it returns (the grouped path must free it so the rest of the
// group can enqueue behind it). The deadline bounds any NVRAM-space
// stall the flush runs into.
func (d *DB) commitHeldTxn(dl deadline) (uint64, error) {
	gc := d.gc
	gc.mu.Lock()
	if gc.failed != nil {
		err := gc.failed
		gc.mu.Unlock()
		d.pg.Rollback()
		d.releaseSlot()
		return 0, err
	}
	if len(gc.queue) == 0 && (gc.size <= 1 || gc.writers <= 1) {
		// Solo fast path: no group to join and no peer on the way.
		// Flush synchronously while the pager transaction is still open,
		// so a journal failure — including a backpressure deadline — rolls
		// it back cleanly. The seq assignment is ordered: no other commit
		// can touch the journal until this writer releases the slot (the
		// queue cannot grow either — enqueueing requires the slot), so
		// taking it after PrepareCommit is safe and lets the version
		// vector bump cover the actual frame set. The bump must precede
		// the journal write: an MVCC session snapshotting between the two
		// would otherwise miss both the frames (not yet in the log) and
		// the conflict (vector not yet bumped) — a lost update. Bumping
		// first, a racing session either conflicts (correct) or
		// snapshots before the seq and conflicts at validation. A failed
		// flush leaves a stale bump behind, which can only cause a
		// spurious ErrConflict, never a lost update.
		gc.mu.Unlock()
		frames, err := d.pg.PrepareCommit()
		if err != nil {
			d.pg.Rollback()
			d.releaseSlot()
			return 0, err
		}
		gc.mu.Lock()
		gc.nextSeq++
		seq := gc.nextSeq
		gc.bumpFrames(frames, seq)
		gc.mu.Unlock()
		if err := d.flushSolo(dl, frames); err != nil {
			d.pg.Rollback()
			d.releaseSlot()
			return 0, fmt.Errorf("pager: commit failed, transaction rolled back: %w", err)
		}
		d.pg.FinishCommit()
		d.releaseSlot()
		return seq, nil
	}
	// Grouped path: hand the frames to the queue, close the pager
	// transaction (later writers build on its cache), free the slot, and
	// wait for a leader to flush the group. Queue order is flush order,
	// so enqueue-time seq matches journal order.
	frames, err := d.pg.PrepareCommit()
	if err != nil {
		gc.mu.Unlock()
		d.pg.Rollback()
		d.releaseSlot()
		return 0, err
	}
	gc.nextSeq++
	req := &commitReq{frames: cloneFrames(frames), done: make(chan struct{}), until: dl.until}
	seq := gc.nextSeq
	gc.bumpFrames(req.frames, seq)
	d.pg.FinishCommit()
	gc.queue = append(gc.queue, req)
	if len(gc.queue) >= gc.size || len(gc.queue) >= gc.writers {
		gc.flushLocked()
	}
	gc.mu.Unlock()
	d.releaseSlot()
	<-req.done
	return seq, req.err
}

// maybeAutoCheckpoint runs the post-commit checkpoint when the log
// passed the frame limit. With BackgroundCheckpoint it only kicks the
// checkpointer goroutine — the commit path never carries checkpoint
// I/O. Inline, it is best-effort: a busy writer slot or an open
// snapshot defers it silently to a later commit (the SQLite behaviour:
// checkpointing cannot pass a reader's mark); a real checkpoint failure
// is reported wrapped in ErrCheckpointDeferred.
func (d *DB) maybeAutoCheckpoint() error {
	lim := d.opts.CheckpointLimit
	if lim <= 0 || d.jrn.FramesSinceCheckpoint() < lim {
		return nil
	}
	if d.Degraded() != nil {
		// Checkpointing writes the database file, which is exactly what
		// degraded mode cannot do; the commit itself is durable in the log.
		return nil
	}
	if d.ckptKick != nil {
		d.kickCheckpoint()
		return nil
	}
	if d.readers.Load() > 0 {
		return nil
	}
	if !d.tryAcquireSlot() {
		return nil
	}
	defer d.releaseSlot()
	if err := d.checkpointLocked(); err != nil {
		if errors.Is(err, ErrBusySnapshot) {
			return nil
		}
		return fmt.Errorf("%w: %w", ErrCheckpointDeferred, err)
	}
	return nil
}

// kickCheckpoint nudges the background checkpointer (no-op when the
// kick buffer already holds a pending nudge, or in inline mode).
func (d *DB) kickCheckpoint() {
	if d.ckptKick == nil {
		return
	}
	select {
	case d.ckptKick <- struct{}{}:
	default:
	}
}

// ckptGate is the reader gate the incremental journals consult: a
// checkpoint round may only cover frames below every open snapshot
// mark. Probing one past the log's end doubles as an "any reader at
// all?" check (used by the file WAL before a log reset).
func (d *DB) ckptGate(watermark int) bool {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	for m := range d.openMarks {
		if m < watermark {
			return false
		}
	}
	return true
}

// checkpointLoop is the background checkpointer: each kick drains the
// log below the frame limit without ever taking the writer slot, so
// commits overlap the checkpoint's page writeback and fsync. A round
// deferred by an open reader waits for the next kick (readers kick on
// Close); a real failure is latched for Close to report. Space
// pressure lowers the bar: below the soft watermark any non-empty log
// is drained, so stalled writers get pages back before the frame limit
// would have triggered.
func (d *DB) checkpointLoop() {
	defer close(d.ckptDone)
	ij := d.jrn.(pager.IncrementalJournal)
	tr := d.health.Tracker("checkpointer")
	needsRound := func() bool {
		frames := d.jrn.FramesSinceCheckpoint()
		if frames >= d.opts.CheckpointLimit {
			return true
		}
		return frames > 0 && d.pressure != nil && d.pressure.avail() < d.pressure.soft
	}
	for {
		select {
		case <-d.ckptQuit:
			return
		case <-d.ckptKick:
		}
		// Armed while rounds are pending: silence past the health budget
		// in this window means the checkpointer is wedged inside a round
		// (a gray-slow fsync, a degraded device), and admission control
		// may escalate instead of stalling writers forever.
		if needsRound() {
			tr.Arm()
		}
		for needsRound() {
			if d.Degraded() != nil {
				break
			}
			start := d.plat.Clock.Now()
			err := ij.CheckpointIncremental(d.ckptGate)
			if err == nil {
				tr.Observe(d.plat.Clock.Now() - start)
				tr.Beat()
				continue
			}
			if errors.Is(err, pager.ErrCheckpointPending) {
				break
			}
			d.ckptErrMu.Lock()
			if d.ckptErr == nil {
				d.ckptErr = err
			}
			d.ckptErrMu.Unlock()
			tr.Disarm()
			return
		}
		tr.Disarm()
	}
}

// Health exposes the engine's gray-failure watchdogs: per-component
// progress heartbeats and latency EWMAs for the background
// checkpointer, group flusher, and scrubber. Serving layers fold it
// into status reporting; tests assert on detection.
func (d *DB) Health() *health.Monitor { return d.health }

// Get reads a record outside any transaction. In Concurrent mode it
// waits for the writer slot; in legacy mode an open write transaction
// is reported as ErrTxnOpen.
func (d *DB) Get(table string, key []byte) ([]byte, bool, error) {
	if err := d.acquireSlot(); err != nil {
		return nil, false, err
	}
	defer d.releaseSlot()
	t, err := d.tree(table)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Scan visits table's records in ascending key order until fn returns
// false. Inside an open transaction use Tx.Scan (legacy single-
// goroutine code may keep calling this mid-transaction; Concurrent mode
// serializes it against the writer).
func (d *DB) Scan(table string, fn func(key, value []byte) bool) error {
	defer d.readLock()()
	t, err := d.tree(table)
	if err != nil {
		return err
	}
	return t.Scan(fn)
}

// ScanRange visits records with start <= key < end (nil end = no upper
// bound) in ascending order until fn returns false.
func (d *DB) ScanRange(table string, start, end []byte, fn func(key, value []byte) bool) error {
	defer d.readLock()()
	t, err := d.tree(table)
	if err != nil {
		return err
	}
	return t.ScanRange(start, end, fn)
}

// ScanPrefix visits records whose key begins with prefix, in ascending
// order until fn returns false.
func (d *DB) ScanPrefix(table string, prefix []byte, fn func(key, value []byte) bool) error {
	defer d.readLock()()
	t, err := d.tree(table)
	if err != nil {
		return err
	}
	return t.ScanPrefix(prefix, fn)
}

// Count returns the number of records in table.
func (d *DB) Count(table string) (int, error) {
	defer d.readLock()()
	t, err := d.tree(table)
	if err != nil {
		return 0, err
	}
	return t.Count()
}

// Checkpoint flushes the log into the database file and truncates it.
func (d *DB) Checkpoint() error {
	if err := d.Degraded(); err != nil {
		return err
	}
	if err := d.acquireSlot(); err != nil {
		return err
	}
	defer d.releaseSlot()
	return d.checkpointLocked()
}

// checkpointLocked checkpoints with the writer slot held. Incremental
// journals protect open readers through the gate (ckptMu is never held
// across the journal call — the gate takes it, and readers hold it
// while marking); the legacy path pairs ckptMu with BeginRead so no new
// snapshot can take a mark between the reader check and the truncation.
func (d *DB) checkpointLocked() error {
	// Flush any group still waiting in the queue: its transactions'
	// pages live only in the pager cache and the queue, so the journal
	// must absorb them before checkpointing. The writer slot is held, so
	// no new request can enqueue concurrently.
	if err := d.gc.flushPending(); err != nil {
		return err
	}
	sw := d.plat.Clock.Now()
	if ij, ok := d.jrn.(pager.IncrementalJournal); ok {
		err := ij.CheckpointIncremental(d.ckptGate)
		if errors.Is(err, pager.ErrCheckpointPending) {
			return ErrBusySnapshot
		}
		if err != nil {
			return err
		}
	} else {
		d.ckptMu.Lock()
		busy := d.readers.Load() > 0
		d.ckptMu.Unlock()
		if busy {
			return ErrBusySnapshot
		}
		if err := d.jrn.Checkpoint(); err != nil {
			return err
		}
	}
	d.plat.Metrics.AddTime(metrics.TimeCheckpnt, d.plat.Clock.Now()-sw)
	return nil
}

// Close stops the background checkpointer and scrubber, checkpoints,
// and releases the database. SQLite checkpoints when the last session
// closes (§2). A latched background-checkpoint failure is reported
// here. In degraded mode the final checkpoint is skipped — the database
// file cannot absorb it — and Close reports the degraded error; the
// committed log content survives in NVRAM for the next recovery.
func (d *DB) Close() error {
	d.stopBackground()
	if err := d.Degraded(); err != nil {
		return err
	}
	err := d.Checkpoint()
	d.ckptErrMu.Lock()
	latched := d.ckptErr
	d.ckptErrMu.Unlock()
	if err == nil && latched != nil {
		err = fmt.Errorf("db: background checkpoint failed: %w", latched)
	}
	return err
}

// Abandon stops the background checkpointer and scrubber goroutines
// without checkpointing or touching the journal. It is the right way to discard
// a DB whose underlying platform has crashed (PowerFail): Close would
// checkpoint into a failed device, while letting the handle leak would
// leave the checkpointer goroutine alive. Safe to call repeatedly — at
// most once effective; the handle must not be used afterwards.
func (d *DB) Abandon() {
	d.stopBackground()
}

// Check verifies the structural invariants of every table's tree.
func (d *DB) Check() error {
	defer d.readLock()()
	cat, err := d.readCatalog()
	if err != nil {
		return err
	}
	for name := range cat {
		t, err := d.tree(name)
		if err != nil {
			return err
		}
		if err := t.Check(); err != nil {
			return fmt.Errorf("table %q: %w", name, err)
		}
	}
	return nil
}
