// Package db is the embedded database engine tying the reproduction
// together — the role SQLite plays in the paper. It exposes a
// serverless, single-writer transactional key-value API over named
// tables (SQLite's B-trees), with the journal mode selecting where the
// write-ahead log lives:
//
//   - JournalWAL: stock SQLite WAL on the EXT4 flash file system;
//   - JournalOptimizedWAL: the paper's fixed WAL baseline (aligned
//     frames via the early-split B+tree, WALDIO pre-allocation);
//   - JournalNVWAL: the paper's contribution, the log in NVRAM.
//
// Query-processing CPU time dominates SQLite transactions (§5.1:
// "SQLite throughput is governed more by the computation performance
// than by the I/O performance"), so the engine charges a calibrated CPU
// cost per operation and per commit to the virtual clock; journaling
// costs then shift throughput exactly as the paper's figures show.
package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/dbfile"
	"repro/internal/metrics"
	"repro/internal/pager"
	"repro/internal/platform"
	"repro/internal/rollback"
	"repro/internal/wal"
)

// JournalMode selects the write-ahead-log implementation.
type JournalMode int

const (
	// JournalWAL is stock SQLite WAL on flash.
	JournalWAL JournalMode = iota
	// JournalOptimizedWAL is the §5.4 optimized flash WAL.
	JournalOptimizedWAL
	// JournalNVWAL keeps the log in NVRAM.
	JournalNVWAL
	// JournalRollback is SQLite's classic rollback-journal (DELETE)
	// mode, the pre-WAL baseline of §1/§2.
	JournalRollback
)

func (j JournalMode) String() string {
	switch j {
	case JournalOptimizedWAL:
		return "optimized-wal"
	case JournalNVWAL:
		return "nvwal"
	case JournalRollback:
		return "rollback"
	default:
		return "wal"
	}
}

// CPUProfile is the query-execution cost model of one platform.
type CPUProfile struct {
	// TxnFixed is charged once per transaction (parsing, locking,
	// commit processing).
	TxnFixed time.Duration
	// PerOp is charged per record operation (B-tree descent, cell
	// manipulation).
	PerOp time.Duration
}

// CPU profiles calibrated against the paper's anchors: 424 µs per
// single-insert transaction on Tuna (§5.1), and 5812 inserts/s for
// NVWAL UH+LS+Diff at 2 µs NVRAM latency on the Nexus 5 (§5.4).
var (
	CPUTuna   = CPUProfile{TxnFixed: 235 * time.Microsecond, PerOp: 170 * time.Microsecond}
	CPUNexus5 = CPUProfile{TxnFixed: 85 * time.Microsecond, PerOp: 62 * time.Microsecond}
)

// Options configures Open.
type Options struct {
	Journal JournalMode
	// NVWAL configures the NVRAM log (JournalNVWAL only). Name defaults
	// to "nvwal:<dbname>".
	NVWAL core.Config
	// WALPrealloc overrides the optimized WAL's initial pre-allocation
	// size in pages (0 selects the paper's 8, which doubles as it
	// fills, §5.4).
	WALPrealloc int
	// CheckpointLimit is the frame count that triggers an automatic
	// checkpoint after commit (SQLite's default 1000). Negative
	// disables auto-checkpointing; 0 selects the default.
	CheckpointLimit int
	// CPU is the platform cost model; zero value charges no CPU time.
	CPU CPUProfile
	// PageSize defaults to 4096.
	PageSize int
}

// DefaultCheckpointLimit matches SQLite's 1000-frame threshold (§2).
const DefaultCheckpointLimit = 1000

// Errors.
var (
	ErrTxnOpen     = errors.New("db: a write transaction is already open")
	ErrNoTxn       = errors.New("db: no open transaction")
	ErrNoTable     = errors.New("db: no such table")
	ErrTableExists = errors.New("db: table already exists")
)

// Catalog layout within page 1, after the pager's reserved header:
//
//	[64:66)  table count (uint16)
//	then per table: 24-byte zero-padded name + 4-byte root page
const (
	catalogOff   = pager.HeaderReserved
	tableNameLen = 24
	tableEntry   = tableNameLen + 4
)

// maxTables bounds the catalog to what fits in page 1.
func maxTables(pageSize int) int { return (pageSize - catalogOff - 2) / tableEntry }

// DB is one open database.
type DB struct {
	plat *platform.Platform
	opts Options
	name string

	dbf     *dbfile.File
	jrn     pager.Journal
	pg      *pager.Pager
	trees   map[string]*btree.Tree
	inTxn   bool
	readers int // open snapshot read transactions
}

// Open opens (creating if necessary) the database file name on the
// platform's flash file system, with the journal per opts. Crash
// recovery runs automatically: the journal replays its committed
// frames.
func Open(plat *platform.Platform, name string, opts Options) (*DB, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = 4096
	}
	if opts.CheckpointLimit == 0 {
		opts.CheckpointLimit = DefaultCheckpointLimit
	}
	f, err := plat.FS.OpenOrCreate(name, "db")
	if err != nil {
		return nil, err
	}
	d := &DB{
		plat:  plat,
		opts:  opts,
		name:  name,
		dbf:   dbfile.New(f, opts.PageSize),
		trees: make(map[string]*btree.Tree),
	}
	switch opts.Journal {
	case JournalNVWAL:
		cfg := opts.NVWAL
		if cfg.Name == "" {
			cfg.Name = "nvwal:" + name
		}
		d.jrn, err = core.Open(plat.Heap, d.dbf, cfg, plat.Metrics)
	case JournalOptimizedWAL:
		d.jrn, err = wal.Open(plat.FS, name+"-wal", d.dbf,
			wal.Options{Mode: wal.ModeOptimized, InitialPrealloc: opts.WALPrealloc}, plat.Metrics)
	case JournalRollback:
		d.jrn, err = rollback.Open(plat.FS, name, d.dbf, plat.Metrics)
	default:
		d.jrn, err = wal.Open(plat.FS, name+"-wal", d.dbf, wal.Options{Mode: wal.ModeStock}, plat.Metrics)
	}
	if err != nil {
		return nil, err
	}
	d.pg, err = pager.Open(d.dbf, d.jrn)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// reserved returns the B+tree per-page reserve. The early-split
// algorithm is applied for the optimized WAL (24-byte tail, §5.4) and
// for NVWAL ("We implemented the same split algorithm for NVWAL") —
// NVWAL reserves frame header + block link so two full-page frames fit
// one 8 KB user-heap block (§3.3). Stock WAL keeps SQLite's original
// layout.
func (d *DB) reserved() int {
	switch d.opts.Journal {
	case JournalWAL, JournalRollback:
		return 0
	case JournalNVWAL:
		return core.RecommendedPageReserve
	default:
		return btree.ReservedTail
	}
}

// Metrics returns the shared metrics sink.
func (d *DB) Metrics() *metrics.Counters { return d.plat.Metrics }

// Journal exposes the underlying journal (for experiment accounting).
func (d *DB) Journal() pager.Journal { return d.jrn }

// chargeCPU advances the virtual clock by the cost-model duration.
func (d *DB) chargeCPU(dur time.Duration) {
	if dur <= 0 {
		return
	}
	d.plat.Clock.Advance(dur)
	d.plat.Metrics.AddTime(metrics.TimeCPU, dur)
}

// readCatalog parses the table catalog out of page 1.
func (d *DB) readCatalog() (map[string]uint32, error) {
	hdr, err := d.pg.Get(1)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	out := make(map[string]uint32, n)
	for i := 0; i < n; i++ {
		off := catalogOff + 2 + i*tableEntry
		name := strings.TrimRight(string(hdr[off:off+tableNameLen]), "\x00")
		root := binary.LittleEndian.Uint32(hdr[off+tableNameLen:])
		out[name] = root
	}
	return out, nil
}

// tree returns the B+tree handle for a table.
func (d *DB) tree(table string) (*btree.Tree, error) {
	if t, ok := d.trees[table]; ok {
		return t, nil
	}
	cat, err := d.readCatalog()
	if err != nil {
		return nil, err
	}
	root, ok := cat[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	t := btree.New(d.pg, root, btree.Config{Reserved: d.reserved()})
	d.trees[table] = t
	return t, nil
}

// CreateTable creates a table in its own transaction. It cannot run
// inside an open write transaction.
func (d *DB) CreateTable(table string) error {
	if d.inTxn {
		return ErrTxnOpen
	}
	if len(table) == 0 || len(table) > tableNameLen {
		return fmt.Errorf("db: table name must be 1..%d bytes", tableNameLen)
	}
	cat, err := d.readCatalog()
	if err != nil {
		return err
	}
	if _, ok := cat[table]; ok {
		return fmt.Errorf("%w: %q", ErrTableExists, table)
	}
	if len(cat) >= maxTables(d.opts.PageSize) {
		return errors.New("db: catalog full")
	}
	d.pg.Begin()
	t, err := btree.Create(d.pg, btree.Config{Reserved: d.reserved()})
	if err != nil {
		d.pg.Rollback()
		return err
	}
	hdr, err := d.pg.Get(1)
	if err != nil {
		d.pg.Rollback()
		return err
	}
	d.pg.MarkDirty(1)
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	off := catalogOff + 2 + n*tableEntry
	copy(hdr[off:off+tableNameLen], make([]byte, tableNameLen))
	copy(hdr[off:], table)
	binary.LittleEndian.PutUint32(hdr[off+tableNameLen:], t.Root())
	binary.LittleEndian.PutUint16(hdr[catalogOff:], uint16(n+1))
	if err := d.pg.Commit(); err != nil {
		d.pg.Rollback()
		return err
	}
	d.trees[table] = t
	return nil
}

// DropTable deletes a table in its own transaction, releasing all of
// its pages to the freelist. It cannot run inside an open write
// transaction.
func (d *DB) DropTable(table string) error {
	if d.inTxn {
		return ErrTxnOpen
	}
	cat, err := d.readCatalog()
	if err != nil {
		return err
	}
	if _, ok := cat[table]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	t, err := d.tree(table)
	if err != nil {
		return err
	}
	d.pg.Begin()
	if err := t.Drop(); err != nil {
		d.pg.Rollback()
		return err
	}
	// Remove the catalog entry, compacting the table list.
	hdr, err := d.pg.Get(1)
	if err != nil {
		d.pg.Rollback()
		return err
	}
	d.pg.MarkDirty(1)
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	for i := 0; i < n; i++ {
		off := catalogOff + 2 + i*tableEntry
		name := strings.TrimRight(string(hdr[off:off+tableNameLen]), "\x00")
		if name != table {
			continue
		}
		last := catalogOff + 2 + (n-1)*tableEntry
		copy(hdr[off:], hdr[off+tableEntry:last+tableEntry])
		for j := last; j < last+tableEntry; j++ {
			hdr[j] = 0
		}
		binary.LittleEndian.PutUint16(hdr[catalogOff:], uint16(n-1))
		break
	}
	if err := d.pg.Commit(); err != nil {
		d.pg.Rollback()
		return err
	}
	delete(d.trees, table)
	return nil
}

// Tables lists the catalog.
func (d *DB) Tables() ([]string, error) {
	cat, err := d.readCatalog()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(cat))
	for name := range cat {
		out = append(out, name)
	}
	return out, nil
}

// HasTable reports whether a table exists.
func (d *DB) HasTable(table string) bool {
	cat, err := d.readCatalog()
	if err != nil {
		return false
	}
	_, ok := cat[table]
	return ok
}

// Tx is one write transaction. SQLite allows a single writer at a time
// (§4.1), which Begin enforces.
type Tx struct {
	db   *DB
	done bool
}

// Begin opens a write transaction.
func (d *DB) Begin() (*Tx, error) {
	if d.inTxn {
		return nil, ErrTxnOpen
	}
	d.inTxn = true
	d.pg.Begin()
	return &Tx{db: d}, nil
}

func (tx *Tx) guard() error {
	if tx.done {
		return ErrNoTxn
	}
	return nil
}

// Insert stores key/value in table, replacing an existing value.
func (tx *Tx) Insert(table string, key, value []byte) error {
	if err := tx.guard(); err != nil {
		return err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return err
	}
	tx.db.chargeCPU(tx.db.opts.CPU.PerOp)
	return t.Put(key, value)
}

// Update rewrites an existing record, reporting whether it existed.
func (tx *Tx) Update(table string, key, value []byte) (bool, error) {
	if err := tx.guard(); err != nil {
		return false, err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return false, err
	}
	tx.db.chargeCPU(tx.db.opts.CPU.PerOp)
	return t.Update(key, value)
}

// Delete removes a record, reporting whether it existed.
func (tx *Tx) Delete(table string, key []byte) (bool, error) {
	if err := tx.guard(); err != nil {
		return false, err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return false, err
	}
	tx.db.chargeCPU(tx.db.opts.CPU.PerOp)
	return t.Delete(key)
}

// Get reads a record, seeing the transaction's own writes.
func (tx *Tx) Get(table string, key []byte) ([]byte, bool, error) {
	if err := tx.guard(); err != nil {
		return nil, false, err
	}
	t, err := tx.db.tree(table)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Commit durably commits the transaction through the journal, then
// auto-checkpoints if the log passed the frame limit.
func (tx *Tx) Commit() error {
	if err := tx.guard(); err != nil {
		return err
	}
	tx.done = true
	tx.db.inTxn = false
	tx.db.chargeCPU(tx.db.opts.CPU.TxnFixed)
	if err := tx.db.pg.Commit(); err != nil {
		return err
	}
	// Auto-checkpoint, unless open read transactions pin the log (the
	// SQLite behaviour: checkpointing cannot pass a reader's mark).
	if lim := tx.db.opts.CheckpointLimit; lim > 0 && tx.db.readers == 0 &&
		tx.db.jrn.FramesSinceCheckpoint() >= lim {
		return tx.db.Checkpoint()
	}
	return nil
}

// Rollback abandons the transaction, restoring all pages.
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.inTxn = false
	tx.db.pg.Rollback()
}

// Get reads a record outside any transaction.
func (d *DB) Get(table string, key []byte) ([]byte, bool, error) {
	if d.inTxn {
		return nil, false, ErrTxnOpen
	}
	t, err := d.tree(table)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Scan visits table's records in ascending key order until fn returns
// false.
func (d *DB) Scan(table string, fn func(key, value []byte) bool) error {
	t, err := d.tree(table)
	if err != nil {
		return err
	}
	return t.Scan(fn)
}

// ScanRange visits records with start <= key < end (nil end = no upper
// bound) in ascending order until fn returns false.
func (d *DB) ScanRange(table string, start, end []byte, fn func(key, value []byte) bool) error {
	t, err := d.tree(table)
	if err != nil {
		return err
	}
	return t.ScanRange(start, end, fn)
}

// ScanPrefix visits records whose key begins with prefix, in ascending
// order until fn returns false.
func (d *DB) ScanPrefix(table string, prefix []byte, fn func(key, value []byte) bool) error {
	t, err := d.tree(table)
	if err != nil {
		return err
	}
	return t.ScanPrefix(prefix, fn)
}

// Count returns the number of records in table.
func (d *DB) Count(table string) (int, error) {
	t, err := d.tree(table)
	if err != nil {
		return 0, err
	}
	return t.Count()
}

// Checkpoint flushes the log into the database file and truncates it.
func (d *DB) Checkpoint() error {
	if d.inTxn {
		return ErrTxnOpen
	}
	if d.readers > 0 {
		return ErrBusySnapshot
	}
	sw := d.plat.Clock.Now()
	if err := d.jrn.Checkpoint(); err != nil {
		return err
	}
	d.plat.Metrics.AddTime(metrics.TimeCheckpnt, d.plat.Clock.Now()-sw)
	return nil
}

// Close checkpoints and releases the database. SQLite checkpoints when
// the last session closes (§2).
func (d *DB) Close() error {
	if d.inTxn {
		return ErrTxnOpen
	}
	return d.Checkpoint()
}

// Check verifies the structural invariants of every table's tree.
func (d *DB) Check() error {
	cat, err := d.readCatalog()
	if err != nil {
		return err
	}
	for name := range cat {
		t, err := d.tree(name)
		if err != nil {
			return err
		}
		if err := t.Check(); err != nil {
			return fmt.Errorf("table %q: %w", name, err)
		}
	}
	return nil
}
