package db

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// commitReq is one transaction waiting in the group-commit queue: its
// frame set (deep-copied — the pager reuses its cache buffers as soon
// as the next writer runs) and the channel its committer blocks on
// until a leader flushes the group. until is the committer's
// backpressure deadline on the virtual clock (0 = none); the group's
// flush honors the earliest one.
type commitReq struct {
	frames []pager.Frame
	// stream carries an MVCC session's pre-staged per-writer log stream
	// (nil for legacy transactions). When every request in a group has
	// one and the journal is a bare NVWAL, the flush merges the streams
	// under one Algorithm 1 append instead of re-coalescing frames.
	stream *core.Stream
	done   chan struct{}
	until  time.Duration
	err    error
}

// groupCommitter is the writer queue behind Tx.Commit. Committing
// transactions enqueue their frames and wait; the transaction whose
// arrival completes the group — GroupCommit entries, or one entry per
// registered writer, whichever is smaller — flushes every queued frame
// set through the journal as a single unit (pager.GroupJournal when the
// journal supports it, else back-to-back single commits).
//
// The flush rule "len(queue) >= size || len(queue) >= writers" is what
// keeps the engine deterministic AND deadlock-free: a group never waits
// for a writer that is not registered, so min(GroupCommit, writers)
// bounds both the group size and the wait.
type groupCommitter struct {
	jrn  pager.Journal
	size int
	// db backs the NVRAM-space retry in flushLocked (checkpoint +
	// backoff on ErrLogFull); nil in journal-only unit tests.
	db *DB

	mu      sync.Mutex
	writers int          // registered writers (sessions + in-flight anonymous txns)
	queue   []*commitReq // committed transactions awaiting a flush
	// nextSeq numbers committed transactions in journal-application
	// order: assigned under mu at enqueue (grouped path, where queue
	// order is flush order) or inside the solo critical section (where
	// the slot serializes the journal write against any other commit).
	nextSeq uint64
	// failed latches a grouped-flush error. By the time a group flushes,
	// its pre-images are gone and later transactions have built on its
	// pages in the pager cache, so the failure cannot be rolled back —
	// the engine refuses further writes instead of corrupting state.
	failed error
	// versions is the per-page version vector behind MVCC first-
	// committer-wins validation: versions[pgno] is the seq of the last
	// committed transaction that wrote pgno (guarded by mu, bumped by
	// every commit path — solo, grouped, and MVCC). A session whose
	// snapshot seq is older than a written page's entry lost the race
	// and gets ErrConflict. Lazily allocated: nil until the first bump.
	versions map[uint32]uint64
}

// bumpPage records seq as the latest commit writing pgno. Caller holds mu.
func (gc *groupCommitter) bumpPage(pgno uint32, seq uint64) {
	if gc.versions == nil {
		gc.versions = make(map[uint32]uint64)
	}
	gc.versions[pgno] = seq
}

// bumpFrames records seq against every page in a legacy frame set.
// Caller holds mu.
func (gc *groupCommitter) bumpFrames(frames []pager.Frame, seq uint64) {
	if len(frames) == 0 {
		return
	}
	if gc.versions == nil {
		gc.versions = make(map[uint32]uint64)
	}
	for _, fr := range frames {
		gc.versions[fr.Pgno] = seq
	}
}

// register announces a writer that will commit transactions.
func (gc *groupCommitter) register() {
	gc.mu.Lock()
	gc.writers++
	gc.mu.Unlock()
}

// unregister retires a writer. If every remaining writer is already
// waiting in the queue, the group can no longer grow — flush it.
func (gc *groupCommitter) unregister() {
	gc.mu.Lock()
	gc.writers--
	if len(gc.queue) > 0 && len(gc.queue) >= gc.writers {
		gc.flushLocked()
	}
	gc.mu.Unlock()
}

// bail reports the latched flush failure, if any.
func (gc *groupCommitter) bail() error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.failed
}

// flushPending flushes whatever is queued. Called with the writer slot
// held (checkpointing), so no new request can enqueue concurrently.
func (gc *groupCommitter) flushPending() error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	gc.flushLocked()
	return gc.failed
}

// flushLocked drains the queue through the journal and wakes every
// waiter. Called with gc.mu held.
func (gc *groupCommitter) flushLocked() {
	if len(gc.queue) == 0 {
		return
	}
	reqs := gc.queue
	gc.queue = nil
	err := gc.failed
	if err == nil {
		var tr *health.Tracker
		var start time.Duration
		if gc.db != nil {
			tr = gc.db.health.Tracker("group-flusher")
			tr.Arm()
			start = gc.db.plat.Clock.Now()
		}
		if err = gc.flushWithBackpressure(reqs); err != nil {
			gc.failed = fmt.Errorf("db: group commit failed, engine disabled: %w", err)
			err = gc.failed
		}
		if tr != nil {
			tr.Observe(gc.db.plat.Clock.Now() - start)
			tr.Beat()
			tr.Disarm()
		}
	}
	for _, r := range reqs {
		r.err = err
		close(r.done)
	}
}

// flushWithBackpressure is flush plus the NVRAM-space retry. ErrLogFull
// from the NVWAL journal is pre-mutation and all-or-nothing (the whole
// group goes through one reserved append), so retrying the identical
// flush after a checkpoint is safe. Unlike the solo path, a group that
// cannot flush is terminal: its members' pre-images are gone and later
// writers have built on its pages, so a deadline expiry here latches
// the engine failed AND degrades the DB — which is why the retry only
// gives up on the earliest member deadline or on provable exhaustion.
// Called with gc.mu held; the retry's checkpoint goes through
// db.reclaim, which takes neither gc.mu nor the writer slot.
func (gc *groupCommitter) flushWithBackpressure(reqs []*commitReq) error {
	err := gc.flush(reqs)
	if err == nil || gc.db == nil || !errors.Is(err, core.ErrLogFull) {
		return err
	}
	d := gc.db
	d.plat.Metrics.Inc(metrics.PressureStalls, 1)
	var until time.Duration
	for _, r := range reqs {
		if r.until > 0 && (until == 0 || r.until < until) {
			until = r.until
		}
	}
	backoff := stallBackoffMin
	for {
		drained := d.jrn.FramesSinceCheckpoint() == 0
		if rerr := d.reclaim(); rerr != nil {
			return rerr
		}
		err = gc.flush(reqs)
		if err == nil || !errors.Is(err, core.ErrLogFull) {
			return err
		}
		if drained {
			d.degrade(fmt.Errorf("NVRAM heap exhausted during group commit: %v", err))
			return fmt.Errorf("%w (%v)", ErrDegraded, err)
		}
		if until > 0 && d.plat.Clock.Now() >= until {
			d.plat.Metrics.Inc(metrics.CommitTimeouts, 1)
			d.degrade(fmt.Errorf("group commit abandoned at its deadline under NVRAM exhaustion"))
			dl := deadline{d: d, until: until}
			return dl.busy("group-deadline", fmt.Errorf("group deadline elapsed: %v", err))
		}
		backoff = d.stallStep(backoff)
	}
}

// flush writes the queued frame sets to the journal: one atomic group
// when the journal supports it, else one commit per transaction in
// queue (= logical commit) order.
func (gc *groupCommitter) flush(reqs []*commitReq) error {
	// Stream path: when every member staged a per-writer NVRAM stream
	// and the journal is a bare NVWAL, merge the streams under one
	// Algorithm 1 append + single commit mark. Frames are the fallback
	// (file WAL, fault wrappers, mixed legacy/MVCC groups) — the stream
	// is an optimization, not a correctness requirement.
	if nv, ok := gc.jrn.(*core.NVWAL); ok {
		streams := make([]*core.Stream, 0, len(reqs))
		for _, r := range reqs {
			if r.stream == nil {
				streams = nil
				break
			}
			streams = append(streams, r.stream)
		}
		if streams != nil {
			return nv.CommitStreams(streams, len(reqs))
		}
	}
	groups := make([][]pager.Frame, 0, len(reqs))
	for _, r := range reqs {
		if len(r.frames) > 0 {
			groups = append(groups, r.frames)
		}
	}
	if len(groups) == 0 {
		return nil
	}
	if gj, ok := gc.jrn.(pager.GroupJournal); ok && len(groups) > 1 {
		return gj.CommitGroup(groups)
	}
	for _, g := range groups {
		if err := gc.jrn.CommitTransaction(g); err != nil {
			return err
		}
	}
	return nil
}

// cloneFrames deep-copies a frame set out of the pager's cache buffers.
// All payloads are carved from one arena allocation: the clone lives
// only until the group committer hands it to the journal, so the whole
// set is freed together and two allocations replace 1+N.
func cloneFrames(frames []pager.Frame) []pager.Frame {
	total := 0
	for _, fr := range frames {
		total += len(fr.Data)
	}
	arena := make([]byte, total)
	out := make([]pager.Frame, len(frames))
	for i, fr := range frames {
		data := arena[:len(fr.Data):len(fr.Data)]
		arena = arena[len(fr.Data):]
		copy(data, fr.Data)
		out[i] = pager.Frame{Pgno: fr.Pgno, Data: data}
	}
	return out
}
