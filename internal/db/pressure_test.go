package db

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/heapo"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/platform"
)

// newTinyHeapDB opens a database on a platform whose NVRAM heap holds
// exactly `pages` heap pages — small enough that a handful of
// transactions exhausts it.
func newTinyHeapDB(t testing.TB, pages int, opts Options) (*DB, *platform.Platform) {
	t.Helper()
	plat, err := platform.New(platform.Config{
		NVRAM: nvram.Config{Size: heapo.SizeForPages(pages)},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(plat, "tiny.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, plat
}

// assertCleanPressureErr fails the test if err is anything other than
// the sanctioned exhaustion outcomes: nil, ErrBusy, ErrDegraded, or
// ErrCheckpointDeferred. A raw heapo.ErrNoSpace is the bug this PR
// exists to kill.
func assertCleanPressureErr(t testing.TB, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if errors.Is(err, heapo.ErrNoSpace) {
		t.Fatalf("raw heapo.ErrNoSpace escaped to the caller: %v", err)
	}
	if !errors.Is(err, ErrBusy) && !errors.Is(err, ErrDegraded) && !errors.Is(err, ErrCheckpointDeferred) {
		t.Fatalf("unsanctioned exhaustion error: %v", err)
	}
}

// TestPressureSustainedWritesSurvive is the headline acceptance test:
// sustained writes against a heap sized for fewer than ten transactions
// all succeed — the watermarks and the commit-side retry checkpoint the
// log under the workload — and the caller never sees an allocation
// error. CheckpointLimit is left at its 1000-frame default so ONLY the
// pressure machinery can be freeing space.
func TestPressureSustainedWritesSurvive(t *testing.T) {
	d, plat := newTinyHeapDB(t, 64, Options{
		Journal: JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
	})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i%8)
		// Every byte of the value changes per write: differential logging
		// (VariantUHLSDiff) logs only changed extents, so near-identical
		// values would produce byte-sized diffs and no log growth at all.
		val := strings.Repeat(string(rune('a'+i%26)), 2048)
		tx, err := d.Begin()
		if err != nil {
			t.Fatalf("txn %d: Begin: %v", i, err)
		}
		if err := tx.Insert("t", []byte(key), []byte(val)); err != nil {
			t.Fatalf("txn %d: Insert: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("txn %d: Commit: %v", i, err)
		}
		want[key] = val
	}
	if plat.Metrics.Count(metrics.UrgentCheckpoints) == 0 {
		t.Fatal("300 2KB txns on a 64-page heap never triggered an urgent checkpoint; no pressure exercised")
	}
	for k, v := range want {
		got, ok, err := d.Get("t", []byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("key %q: ok=%v err=%v match=%v", k, ok, err, string(got) == v)
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPressureDeadlineErrBusy pins the log with an open snapshot reader
// so checkpointing cannot free space, and proves a stalled commit comes
// back as a clean ErrBusy at its CommitTimeout — transaction rolled
// back, engine fully usable once the reader closes.
func TestPressureDeadlineErrBusy(t *testing.T) {
	d, plat := newTinyHeapDB(t, 64, Options{
		Journal:       JournalNVWAL,
		NVWAL:         core.VariantUHLSDiff(),
		CommitTimeout: 2 * time.Millisecond,
	})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"seed": "v"})

	// The reader's mark predates everything below: no checkpoint round
	// may pass it, so the log can only grow.
	rd, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}

	busy := false
	for i := 0; i < 100 && !busy; i++ {
		key := []byte(fmt.Sprintf("fill%d", i))
		tx, err := d.Begin()
		if err != nil {
			assertCleanPressureErr(t, err)
			if errors.Is(err, ErrBusy) {
				busy = true
			}
			continue
		}
		if err := tx.Insert("t", key, make([]byte, 2048)); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			assertCleanPressureErr(t, err)
			if errors.Is(err, ErrBusy) {
				busy = true
			}
		}
	}
	if !busy {
		t.Fatal("100 fill txns against a pinned 64-page heap never hit ErrBusy")
	}
	if plat.Metrics.Count(metrics.CommitTimeouts) == 0 {
		t.Fatal("ErrBusy returned but commit_timeouts counter is zero")
	}
	if d.Degraded() != nil {
		t.Fatalf("deadline expiry must not latch degraded mode: %v", d.Degraded())
	}

	// The reader still sees its snapshot, and closing it unsticks the
	// engine completely.
	if _, ok, err := rd.Get("t", []byte("seed")); err != nil || !ok {
		t.Fatalf("pinned snapshot lost its view: %v %v", ok, err)
	}
	rd.Close()
	mustCommitKV(t, d, "t", map[string]string{"after": "busy"})
	if v, ok, _ := d.Get("t", []byte("after")); !ok || string(v) != "busy" {
		t.Fatal("commit after reader close lost")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPressureDegradedWhenCheckpointCannotHelp proves the last rung of
// the degradation ladder: a transaction too large to ever fit the heap
// fails even against a fully drained log, so the engine latches
// ErrDegraded read-only instead of stalling the writer forever — and
// reads keep serving the last good state.
func TestPressureDegradedWhenCheckpointCannotHelp(t *testing.T) {
	d, _ := newTinyHeapDB(t, 24, Options{
		Journal: JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
	})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"seed": "good"})
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// ~200 KB of dirty pages against a 96 KB heap: no checkpoint can
	// ever free enough, because the log is already empty.
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tx.Insert("t", []byte(fmt.Sprintf("big%03d", i)), make([]byte, 1024)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	err = tx.Commit()
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("oversized commit = %v, want ErrDegraded", err)
	}
	if errors.Is(err, heapo.ErrNoSpace) {
		t.Fatalf("raw heapo.ErrNoSpace escaped: %v", err)
	}

	// The latch is sticky for writes; reads keep serving committed state.
	if _, err := d.Begin(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Begin after degrade = %v, want ErrDegraded", err)
	}
	if v, ok, _ := d.Get("t", []byte("seed")); !ok || string(v) != "good" {
		t.Fatal("degraded mode lost committed data on the read path")
	}
	if _, ok, _ := d.Get("t", []byte("big000")); ok {
		t.Fatal("rolled-back oversized transaction left data behind")
	}
}

// TestPressureRaceStress hammers a tiny heap from concurrent writers
// and snapshot readers with the background checkpointer on — run under
// -race by the CI test tier. Every outcome must be a sanctioned one;
// the workload as a whole must make progress.
func TestPressureRaceStress(t *testing.T) {
	d, _ := newTinyHeapDB(t, 256, Options{
		Journal:              JournalNVWAL,
		NVWAL:                core.VariantUHLSDiff(),
		Concurrent:           true,
		BackgroundCheckpoint: true,
		CheckpointLimit:      16,
		CommitTimeout:        50 * time.Millisecond,
	})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	const writers, txnsPerWriter = 4, 40
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		committed int
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				tx, err := d.Begin()
				if err != nil {
					assertCleanPressureErr(t, err)
					if errors.Is(err, ErrDegraded) {
						return
					}
					continue
				}
				key := []byte(fmt.Sprintf("w%d-k%d", w, i%10))
				if err := tx.Insert("t", key, make([]byte, 512)); err != nil {
					tx.Rollback()
					t.Errorf("writer %d: Insert: %v", w, err)
					return
				}
				if err := tx.Commit(); err != nil {
					assertCleanPressureErr(t, err)
					if errors.Is(err, ErrDegraded) {
						return
					}
					continue
				}
				mu.Lock()
				committed++
				mu.Unlock()
			}
		}(w)
	}
	stopReaders := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				rd, err := d.BeginRead()
				if err != nil {
					t.Errorf("BeginRead: %v", err)
					return
				}
				_, _, _ = rd.Get("t", []byte("w0-k0"))
				time.Sleep(100 * time.Microsecond)
				rd.Close()
			}
		}()
	}
	wg.Wait()
	close(stopReaders)
	rwg.Wait()

	if committed == 0 {
		t.Fatal("no transaction ever committed under pressure")
	}
	if d.Degraded() == nil {
		if err := d.Check(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil && !errors.Is(err, ErrBusySnapshot) {
			assertCleanPressureErr(t, err)
		}
	} else {
		d.Abandon()
	}
}
