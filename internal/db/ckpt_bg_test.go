package db

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/platform"
)

func bgOptions() Options {
	return Options{
		Journal:              JournalNVWAL,
		NVWAL:                core.VariantUHLSDiff(),
		Concurrent:           true,
		BackgroundCheckpoint: true,
		CheckpointLimit:      4,
	}
}

func waitDrained(t *testing.T, d *DB, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for d.Journal().FramesSinceCheckpoint() >= limit {
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never drained the log (%d frames)",
				d.Journal().FramesSinceCheckpoint())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackgroundCheckpointDrainsLog is the end-to-end happy path: with
// BackgroundCheckpoint on, commits past the limit kick the checkpointer
// goroutine, the log drains without any commit carrying checkpoint I/O,
// and Close reports a clean shutdown.
func TestBackgroundCheckpointDrainsLog(t *testing.T) {
	d, plat := newDB(t, bgOptions())
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		mustCommitKV(t, d, "t", map[string]string{fmt.Sprintf("k%03d", i): "v"})
	}
	waitDrained(t, d, bgOptions().CheckpointLimit)
	if plat.Metrics.Count(metrics.Checkpoints) == 0 {
		t.Fatal("no checkpoint round ran")
	}
	if plat.Metrics.Count(metrics.CheckpointPages) == 0 {
		t.Fatal("checkpoint wrote no pages")
	}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("k%03d", i)
		if _, ok, err := d.Get("t", []byte(k)); err != nil || !ok {
			t.Fatalf("key %s lost after background checkpointing (ok=%v err=%v)", k, ok, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestReaderOpenedMidCheckpointKeepsMark parks the background
// checkpointer inside phase B (page writeback, no lock held), opens a
// snapshot reader and lands a commit while it is parked, and verifies
// the reader's view never moves — the regression the backfill watermark
// exists to prevent.
func TestReaderOpenedMidCheckpointKeepsMark(t *testing.T) {
	opts := bgOptions()
	d, _ := newDB(t, opts)
	w, ok := d.Journal().(*core.NVWAL)
	if !ok {
		t.Fatalf("journal is %T, want *core.NVWAL", d.Journal())
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	// Arm the hook before any commit: the kick channel orders this write
	// before the checkpointer goroutine's reads.
	var armed atomic.Bool
	var enterOnce sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	armed.Store(true)
	w.SetCrashHook(func(s string) {
		if s == core.StepCkptAfterPages && armed.Load() {
			enterOnce.Do(func() { close(entered) })
			<-release
		}
	})

	for i := 0; i < 6; i++ {
		mustCommitKV(t, d, "t", map[string]string{fmt.Sprintf("k%d", i): "v"})
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("checkpointer never reached phase B")
	}

	// Reader opens while the writeback is in flight.
	r, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok, err := r.Get("t", []byte("k5")); err != nil || !ok {
		t.Fatalf("mid-checkpoint snapshot missing k5 (ok=%v err=%v)", ok, err)
	}

	// A commit while the checkpointer is parked must not block: if the
	// commit path waited on checkpoint I/O this test would deadlock
	// (release only closes after the commit returns).
	mustCommitKV(t, d, "t", map[string]string{"late": "v"})
	armed.Store(false)
	close(release)

	waitDrained(t, d, opts.CheckpointLimit)
	// The snapshot still reads at its mark: pre-mark keys present, the
	// post-mark commit invisible.
	if _, ok, err := r.Get("t", []byte("k5")); err != nil || !ok {
		t.Fatalf("snapshot lost k5 after checkpoint completed (ok=%v err=%v)", ok, err)
	}
	if _, ok, _ := r.Get("t", []byte("late")); ok {
		t.Fatal("snapshot sees a commit after its mark")
	}
	r.Close()
	if _, ok, err := d.Get("t", []byte("late")); err != nil || !ok {
		t.Fatalf("post-mark commit lost (ok=%v err=%v)", ok, err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestBackgroundCheckpointConcurrentWriters hammers the bg checkpointer
// with parallel writers (race-detector coverage for the commit /
// writeback overlap) and verifies every acknowledged commit survives.
func TestBackgroundCheckpointConcurrentWriters(t *testing.T) {
	opts := bgOptions()
	opts.GroupCommit = 4
	d, _ := newDB(t, opts)
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	const writers, each = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tx, err := d.Begin()
				if err != nil {
					errs <- err
					return
				}
				k := fmt.Sprintf("w%d-%03d", wid, i)
				if err := tx.Insert("t", []byte(k), []byte("v")); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(wid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitDrained(t, d, opts.CheckpointLimit)
	for wid := 0; wid < writers; wid++ {
		for i := 0; i < each; i++ {
			k := fmt.Sprintf("w%d-%03d", wid, i)
			if _, ok, err := d.Get("t", []byte(k)); err != nil || !ok {
				t.Fatalf("acknowledged commit %s lost (ok=%v err=%v)", k, ok, err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestBackgroundCheckpointOptionValidation pins the option's contract.
func TestBackgroundCheckpointOptionValidation(t *testing.T) {
	plat, err := platform.NewNexus5()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(plat, "a.db", Options{
		Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff(),
		BackgroundCheckpoint: true,
	}); err == nil {
		t.Fatal("BackgroundCheckpoint without Concurrent accepted")
	}
	if _, err := Open(plat, "b.db", Options{
		Journal: JournalRollback, Concurrent: true,
		BackgroundCheckpoint: true,
	}); err == nil {
		t.Fatal("BackgroundCheckpoint under a rollback journal accepted")
	}
	// The file WAL implements the incremental interface too.
	d, err := Open(plat, "c.db", Options{
		Journal: JournalWAL, Concurrent: true,
		BackgroundCheckpoint: true, CheckpointLimit: 4,
	})
	if err != nil {
		t.Fatalf("BackgroundCheckpoint under file WAL rejected: %v", err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustCommitKV(t, d, "t", map[string]string{fmt.Sprintf("k%d", i): "v"})
	}
	waitDrained(t, d, 4)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
