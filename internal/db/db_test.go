package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/platform"
)

func allModes() []Options {
	return []Options{
		{Journal: JournalWAL},
		{Journal: JournalOptimizedWAL},
		{Journal: JournalRollback},
		{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()},
		{Journal: JournalNVWAL, NVWAL: core.VariantLS()},
		{Journal: JournalNVWAL, NVWAL: core.VariantE()},
	}
}

func modeName(o Options) string {
	if o.Journal == JournalNVWAL {
		return "nvwal-" + o.NVWAL.Label()
	}
	return o.Journal.String()
}

func newDB(t testing.TB, opts Options) (*DB, *platform.Platform) {
	t.Helper()
	plat, err := platform.NewNexus5()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(plat, "test.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, plat
}

func mustCommitKV(t testing.TB, d *DB, table string, kv map[string]string) {
	t.Helper()
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range kv {
		if err := tx.Insert(table, []byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicCRUDAllModes(t *testing.T) {
	for _, opts := range allModes() {
		t.Run(modeName(opts), func(t *testing.T) {
			d, _ := newDB(t, opts)
			if err := d.CreateTable("contacts"); err != nil {
				t.Fatal(err)
			}
			mustCommitKV(t, d, "contacts", map[string]string{"alice": "111", "bob": "222"})

			v, ok, err := d.Get("contacts", []byte("alice"))
			if err != nil || !ok || string(v) != "111" {
				t.Fatalf("Get alice = (%q,%v,%v)", v, ok, err)
			}

			tx, _ := d.Begin()
			if ok, err := tx.Update("contacts", []byte("bob"), []byte("333")); err != nil || !ok {
				t.Fatalf("Update = (%v,%v)", ok, err)
			}
			if ok, err := tx.Delete("contacts", []byte("alice")); err != nil || !ok {
				t.Fatalf("Delete = (%v,%v)", ok, err)
			}
			// Transaction sees its own writes.
			if _, ok, _ := tx.Get("contacts", []byte("alice")); ok {
				t.Fatal("deleted key visible inside txn")
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := d.Get("contacts", []byte("alice")); ok {
				t.Fatal("deleted key visible after commit")
			}
			v, ok, _ = d.Get("contacts", []byte("bob"))
			if !ok || string(v) != "333" {
				t.Fatalf("bob = (%q,%v)", v, ok)
			}
			if n, _ := d.Count("contacts"); n != 1 {
				t.Fatalf("Count = %d", n)
			}
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRollbackRestoresState(t *testing.T) {
	for _, opts := range allModes() {
		t.Run(modeName(opts), func(t *testing.T) {
			d, _ := newDB(t, opts)
			d.CreateTable("t")
			mustCommitKV(t, d, "t", map[string]string{"k1": "v1"})
			tx, _ := d.Begin()
			tx.Insert("t", []byte("k2"), []byte("v2"))
			tx.Delete("t", []byte("k1"))
			tx.Rollback()
			if _, ok, _ := d.Get("t", []byte("k2")); ok {
				t.Fatal("rolled-back insert visible")
			}
			v, ok, _ := d.Get("t", []byte("k1"))
			if !ok || string(v) != "v1" {
				t.Fatal("rolled-back delete destroyed data")
			}
			// A fresh transaction works after rollback.
			mustCommitKV(t, d, "t", map[string]string{"k3": "v3"})
			if _, ok, _ := d.Get("t", []byte("k3")); !ok {
				t.Fatal("commit after rollback failed")
			}
		})
	}
}

func TestSingleWriterEnforced(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	d.CreateTable("t")
	tx, _ := d.Begin()
	if _, err := d.Begin(); err == nil {
		t.Fatal("second concurrent write transaction allowed")
	}
	if err := d.CreateTable("u"); err == nil {
		t.Fatal("CreateTable allowed inside txn")
	}
	tx.Rollback()
	if _, err := d.Begin(); err != nil {
		t.Fatalf("Begin after rollback: %v", err)
	}
}

func TestTableErrors(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalOptimizedWAL})
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if err := d.CreateTable(""); err == nil {
		t.Fatal("empty table name accepted")
	}
	tx, _ := d.Begin()
	if err := tx.Insert("missing", []byte("k"), []byte("v")); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	tx.Rollback()
	if d.HasTable("missing") || !d.HasTable("t") {
		t.Fatal("HasTable wrong")
	}
	names, _ := d.Tables()
	if len(names) != 1 || names[0] != "t" {
		t.Fatalf("Tables = %v", names)
	}
}

func TestDropTable(t *testing.T) {
	d, plat := newDB(t, Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	d.CreateTable("a")
	d.CreateTable("b")
	mustCommitKV(t, d, "a", map[string]string{"k": strings.Repeat("x", 10000)})
	mustCommitKV(t, d, "b", map[string]string{"k": "v"})
	if err := d.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if d.HasTable("a") {
		t.Fatal("dropped table still cataloged")
	}
	if _, ok, _ := d.Get("b", []byte("k")); !ok {
		t.Fatal("sibling table damaged by drop")
	}
	if err := d.DropTable("a"); err == nil {
		t.Fatal("double drop succeeded")
	}
	// Drop inside a transaction is rejected.
	tx, _ := d.Begin()
	if err := d.DropTable("b"); err == nil {
		t.Fatal("DropTable inside txn accepted")
	}
	tx.Rollback()
	// Freed pages (including the overflow chain) recycle, and the drop
	// survives a crash.
	d.CreateTable("c")
	mustCommitKV(t, d, "c", map[string]string{"k2": "v2"})
	plat.PowerFail(memsim.FailDropAll, 8)
	if err := plat.Reboot(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(plat, "test.db", Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	if err != nil {
		t.Fatal(err)
	}
	if d2.HasTable("a") {
		t.Fatal("dropped table resurrected by recovery")
	}
	if _, ok, _ := d2.Get("c", []byte("k2")); !ok {
		t.Fatal("post-drop table lost")
	}
	if err := d2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	for _, opts := range allModes() {
		t.Run(modeName(opts), func(t *testing.T) {
			plat, err := platform.NewNexus5()
			if err != nil {
				t.Fatal(err)
			}
			d, err := Open(plat, "p.db", opts)
			if err != nil {
				t.Fatal(err)
			}
			d.CreateTable("t")
			mustCommitKV(t, d, "t", map[string]string{"key": "value"})
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, err := Open(plat, "p.db", opts)
			if err != nil {
				t.Fatal(err)
			}
			v, ok, err := d2.Get("t", []byte("key"))
			if err != nil || !ok || string(v) != "value" {
				t.Fatalf("after reopen: (%q,%v,%v)", v, ok, err)
			}
		})
	}
}

// crash reboots the platform and reopens the database.
func crash(t *testing.T, plat *platform.Platform, opts Options, seed int64) *DB {
	t.Helper()
	plat.PowerFail(memsim.FailDropAll, seed)
	if err := plat.Reboot(); err != nil {
		t.Fatal(err)
	}
	d, err := Open(plat, "c.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCommittedDataSurvivesCrash(t *testing.T) {
	for _, opts := range allModes() {
		if opts.Journal == JournalNVWAL && opts.NVWAL.Sync == core.SyncChecksum {
			continue
		}
		t.Run(modeName(opts), func(t *testing.T) {
			plat, _ := platform.NewNexus5()
			d, err := Open(plat, "c.db", opts)
			if err != nil {
				t.Fatal(err)
			}
			d.CreateTable("t")
			for i := 0; i < 20; i++ {
				mustCommitKV(t, d, "t", map[string]string{fmt.Sprintf("k%03d", i): fmt.Sprintf("v%03d", i)})
			}
			d2 := crash(t, plat, opts, 1)
			for i := 0; i < 20; i++ {
				v, ok, err := d2.Get("t", []byte(fmt.Sprintf("k%03d", i)))
				if err != nil || !ok || string(v) != fmt.Sprintf("v%03d", i) {
					t.Fatalf("k%03d lost after crash: (%q,%v,%v)", i, v, ok, err)
				}
			}
			if err := d2.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUncommittedTxnInvisibleAfterCrash(t *testing.T) {
	opts := Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()}
	plat, _ := platform.NewNexus5()
	d, err := Open(plat, "c.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	d.CreateTable("t")
	mustCommitKV(t, d, "t", map[string]string{"durable": "yes"})
	tx, _ := d.Begin()
	tx.Insert("t", []byte("volatile"), []byte("no"))
	// Crash with the transaction open — never committed.
	d2 := crash(t, plat, opts, 2)
	if _, ok, _ := d2.Get("t", []byte("volatile")); ok {
		t.Fatal("uncommitted insert survived crash")
	}
	if _, ok, _ := d2.Get("t", []byte("durable")); !ok {
		t.Fatal("committed insert lost")
	}
}

func TestAutoCheckpointTriggers(t *testing.T) {
	opts := Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff(), CheckpointLimit: 25}
	d, plat := newDB(t, opts)
	d.CreateTable("t")
	for i := 0; i < 40; i++ {
		mustCommitKV(t, d, "t", map[string]string{fmt.Sprintf("k%04d", i): "x"})
	}
	if got := plat.Metrics.Count(metrics.Checkpoints); got == 0 {
		t.Fatal("auto-checkpoint never fired")
	}
	if frames := d.Journal().FramesSinceCheckpoint(); frames >= 40 {
		t.Fatalf("log never truncated: %d frames", frames)
	}
	// Data intact after checkpoints.
	for i := 0; i < 40; i++ {
		if _, ok, _ := d.Get("t", []byte(fmt.Sprintf("k%04d", i))); !ok {
			t.Fatalf("k%04d lost across checkpoints", i)
		}
	}
}

func TestCheckpointThenCrashServesFromDBFile(t *testing.T) {
	for _, opts := range allModes() {
		if opts.Journal == JournalNVWAL && opts.NVWAL.Sync == core.SyncChecksum {
			continue
		}
		t.Run(modeName(opts), func(t *testing.T) {
			plat, _ := platform.NewNexus5()
			d, err := Open(plat, "c.db", opts)
			if err != nil {
				t.Fatal(err)
			}
			d.CreateTable("t")
			mustCommitKV(t, d, "t", map[string]string{"a": "1", "b": "2"})
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			mustCommitKV(t, d, "t", map[string]string{"c": "3"})
			d2 := crash(t, plat, opts, 3)
			for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
				v, ok, _ := d2.Get("t", []byte(k))
				if !ok || string(v) != want {
					t.Fatalf("%s = (%q,%v), want %q", k, v, ok, want)
				}
			}
		})
	}
}

func TestJournalModesProduceIdenticalContents(t *testing.T) {
	// After the same workload, every journal mode must yield the same
	// database contents (the §6 equivalence invariant of DESIGN.md).
	type snapshot map[string]string
	run := func(opts Options, seed int64) snapshot {
		plat, _ := platform.NewNexus5()
		d, err := Open(plat, "e.db", opts)
		if err != nil {
			t.Fatal(err)
		}
		d.CreateTable("t")
		rng := rand.New(rand.NewSource(seed))
		for txn := 0; txn < 30; txn++ {
			tx, _ := d.Begin()
			for op := 0; op < 1+rng.Intn(4); op++ {
				k := []byte(fmt.Sprintf("key%03d", rng.Intn(60)))
				switch rng.Intn(3) {
				case 0, 1:
					tx.Insert("t", k, []byte(fmt.Sprintf("val%06d", rng.Intn(1_000_000))))
				case 2:
					tx.Delete("t", k)
				}
			}
			if rng.Intn(5) == 0 {
				tx.Rollback()
			} else if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		out := snapshot{}
		d.Scan("t", func(k, v []byte) bool { out[string(k)] = string(v); return true })
		return out
	}
	const seed = 99
	ref := run(Options{Journal: JournalWAL}, seed)
	for _, opts := range allModes()[1:] {
		got := run(opts, seed)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d records, want %d", modeName(opts), len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("%s: %q=%q, want %q", modeName(opts), k, got[k], v)
			}
		}
	}
}

// Property: random workloads with random crash points always recover to
// exactly the committed prefix.
func TestPropertyCrashRecoveryMatchesCommittedModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff(), CheckpointLimit: 30}
		plat, _ := platform.NewNexus5()
		d, err := Open(plat, "c.db", opts)
		if err != nil {
			return false
		}
		if err := d.CreateTable("t"); err != nil {
			return false
		}
		model := map[string]string{}
		txns := 5 + rng.Intn(25)
		for i := 0; i < txns; i++ {
			tx, err := d.Begin()
			if err != nil {
				return false
			}
			pending := map[string]*string{}
			for op := 0; op < 1+rng.Intn(3); op++ {
				k := fmt.Sprintf("k%03d", rng.Intn(40))
				if rng.Intn(4) == 0 {
					tx.Delete("t", []byte(k))
					pending[k] = nil
				} else {
					v := fmt.Sprintf("v%08d", rng.Intn(1_000_000))
					tx.Insert("t", []byte(k), []byte(v))
					pending[k] = &v
				}
			}
			if err := tx.Commit(); err != nil {
				return false
			}
			for k, v := range pending {
				if v == nil {
					delete(model, k)
				} else {
					model[k] = *v
				}
			}
		}
		// Crash (possibly mid-transaction) and recover.
		if rng.Intn(2) == 0 {
			tx, _ := d.Begin()
			tx.Insert("t", []byte("torn"), []byte("torn"))
		}
		plat.PowerFail(memsim.FailDropAll, seed)
		if err := plat.Reboot(); err != nil {
			return false
		}
		d2, err := Open(plat, "c.db", opts)
		if err != nil {
			return false
		}
		got := map[string]string{}
		d2.Scan("t", func(k, v []byte) bool { got[string(k)] = string(v); return true })
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		return d2.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCPUProfileChargesTime(t *testing.T) {
	opts := Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff(), CPU: CPUNexus5}
	d, plat := newDB(t, opts)
	d.CreateTable("t")
	before := plat.Clock.Now()
	mustCommitKV(t, d, "t", map[string]string{"k": "v"})
	elapsed := plat.Clock.Now() - before
	if elapsed < CPUNexus5.TxnFixed+CPUNexus5.PerOp {
		t.Fatalf("transaction charged %v, want at least CPU model %v",
			elapsed, CPUNexus5.TxnFixed+CPUNexus5.PerOp)
	}
	if plat.Metrics.Time(metrics.TimeCPU) == 0 {
		t.Fatal("no CPU time attributed")
	}
}

func TestOverflowValuesSurviveCrash(t *testing.T) {
	// Values spanning overflow-page chains must commit atomically and
	// recover, in every journal mode.
	for _, opts := range allModes() {
		if opts.Journal == JournalNVWAL && opts.NVWAL.Sync == core.SyncChecksum {
			continue
		}
		t.Run(modeName(opts), func(t *testing.T) {
			plat, _ := platform.NewNexus5()
			d, err := Open(plat, "c.db", opts)
			if err != nil {
				t.Fatal(err)
			}
			d.CreateTable("blobs")
			big := bytes.Repeat([]byte("overflow!"), 2500) // 22.5 KB
			mustCommitKV(t, d, "blobs", map[string]string{"big": string(big)})
			d2 := crash(t, plat, opts, 21)
			v, ok, err := d2.Get("blobs", []byte("big"))
			if err != nil || !ok || !bytes.Equal(v, big) {
				t.Fatalf("overflow value lost across crash (ok=%v err=%v len=%d)", ok, err, len(v))
			}
			// Delete and reuse the freed chain pages.
			tx, _ := d2.Begin()
			if ok, err := tx.Delete("blobs", []byte("big")); err != nil || !ok {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			mustCommitKV(t, d2, "blobs", map[string]string{"big2": string(big[:20000])})
			if err := d2.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLargeWorkloadAllModes(t *testing.T) {
	for _, opts := range allModes() {
		t.Run(modeName(opts), func(t *testing.T) {
			d, _ := newDB(t, opts)
			d.CreateTable("t")
			val := bytes.Repeat([]byte("x"), 100)
			for i := 0; i < 300; i++ {
				tx, _ := d.Begin()
				if err := tx.Insert("t", []byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if n, _ := d.Count("t"); n != 300 {
				t.Fatalf("Count = %d", n)
			}
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTablesSorted(t *testing.T) {
	d, _ := newDB(t, Options{Journal: JournalOptimizedWAL})
	// Created deliberately out of lexical order: the listing must not
	// depend on catalog map iteration.
	for _, name := range []string{"zebra", "alpha", "mango", "delta"} {
		if err := d.CreateTable(name); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "delta", "mango", "zebra"}
	for i := 0; i < 10; i++ {
		got, err := d.Tables()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("Tables = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Tables = %v, want sorted %v", got, want)
			}
		}
	}
}

func TestCatalogOpsChargeCPU(t *testing.T) {
	opts := Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff(), CPU: CPUNexus5}
	d, plat := newDB(t, opts)
	before := plat.Clock.Now()
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if elapsed := plat.Clock.Now() - before; elapsed < CPUNexus5.TxnFixed {
		t.Fatalf("CreateTable charged %v, want at least TxnFixed %v", elapsed, CPUNexus5.TxnFixed)
	}
	before = plat.Clock.Now()
	if err := d.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if elapsed := plat.Clock.Now() - before; elapsed < CPUNexus5.TxnFixed {
		t.Fatalf("DropTable charged %v, want at least TxnFixed %v", elapsed, CPUNexus5.TxnFixed)
	}
}
