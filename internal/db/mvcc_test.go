package db

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

// TestMVCCBasicCommit commits through a session and checks the result
// is visible to legacy reads, snapshots, and later sessions.
func TestMVCCBasicCommit(t *testing.T) {
	d, _ := newDB(t, concurrentOpts(1))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx, err := d.BeginConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", []byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := tx.Get("t", []byte("k1")); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("own-write read: %q %v %v", v, ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.Seq() == 0 {
		t.Fatal("committed session has no seq")
	}
	if v, ok, err := d.Get("t", []byte("k1")); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("post-commit read: %q %v %v", v, ok, err)
	}
	tx2, err := d.BeginConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tx2.Get("t", []byte("k1")); !ok || string(v) != "v1" {
		t.Fatalf("next session read: %q %v", v, ok)
	}
	tx2.Rollback()
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCFirstCommitterWins: two sessions write the same key from the
// same snapshot; the second committer must get ErrConflict and its
// change must not surface.
func TestMVCCFirstCommitterWins(t *testing.T) {
	d, _ := newDB(t, concurrentOpts(1))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"k": "base"})

	a, err := d.BeginConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.BeginConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Update("t", []byte("k"), []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Update("t", []byte("k"), []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	err = b.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer: want ErrConflict, got %v", err)
	}
	if v, _, _ := d.Get("t", []byte("k")); string(v) != "from-a" {
		t.Fatalf("winner's value lost: %q", v)
	}
	if n := d.Metrics().Count(metrics.MVCCConflicts); n != 1 {
		t.Fatalf("mvcc_conflicts = %d, want 1", n)
	}
	// The loser retries from a fresh snapshot and succeeds.
	c, err := d.BeginConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update("t", []byte("k"), []byte("from-b-retry")); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := d.Get("t", []byte("k")); string(v) != "from-b-retry" {
		t.Fatalf("retry lost: %q", v)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCSnapshotIsolation: a session must not see a commit that lands
// after its snapshot, and a disjoint-page session commit must still
// succeed (no false conflicts).
func TestMVCCSnapshotIsolation(t *testing.T) {
	d, _ := newDB(t, concurrentOpts(1))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"a": "1"})

	sess, err := d.BeginConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	// Legacy writer commits after the snapshot.
	mustCommitKV(t, d, "t", map[string]string{"a": "2"})
	if v, _, _ := sess.Get("t", []byte("a")); string(v) != "1" {
		t.Fatalf("snapshot leaked later commit: %q", v)
	}
	sess.Rollback()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCLegacyConflict: a legacy (slot-holding) commit after the
// session snapshot must also trigger ErrConflict — the version vector
// covers every commit path.
func TestMVCCLegacyConflict(t *testing.T) {
	d, _ := newDB(t, concurrentOpts(1))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"k": "base"})

	sess, err := d.BeginConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Update("t", []byte("k"), []byte("session")); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"k": "legacy"})
	if err := sess.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict after legacy commit, got %v", err)
	}
	if v, _, _ := d.Get("t", []byte("k")); string(v) != "legacy" {
		t.Fatalf("legacy write lost: %q", v)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCConcurrentCounters hammers overlapping keys from many
// goroutines through RunConcurrent and checks the final sums: every
// increment must be applied exactly once (lost updates are the bug
// first-committer-wins exists to prevent).
func TestMVCCConcurrentCounters(t *testing.T) {
	const (
		workers  = 8
		incs     = 40
		counters = 4 // deliberately overlapping across workers
	)
	d, _ := newDB(t, concurrentOpts(4))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	// Seed the counters.
	init := make(map[string]string, counters)
	for c := 0; c < counters; c++ {
		init[fmt.Sprintf("c%d", c)] = string([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	}
	mustCommitKV(t, d, "t", init)

	var wg sync.WaitGroup
	var failed atomic.Int64
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				key := []byte(fmt.Sprintf("c%d", (w+i)%counters))
				err := d.RunConcurrent(context.Background(), func(tx *CTx) error {
					v, ok, err := tx.Get("t", key)
					if err != nil || !ok {
						return fmt.Errorf("counter read: %v ok=%v", err, ok)
					}
					buf := make([]byte, 8)
					binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(v)+1)
					_, err = tx.Update("t", key, buf)
					return err
				})
				if err != nil {
					failed.Add(1)
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var total uint64
	for c := 0; c < counters; c++ {
		v, ok, err := d.Get("t", []byte(fmt.Sprintf("c%d", c)))
		if err != nil || !ok {
			t.Fatalf("counter c%d: %v ok=%v", c, err, ok)
		}
		total += binary.LittleEndian.Uint64(v)
	}
	if want := uint64(workers * incs); total != want {
		t.Fatalf("lost updates: counters sum to %d, want %d", total, want)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCMixedLegacyAndSessions interleaves legacy transactions and
// MVCC sessions on disjoint keys plus fresh-page allocations, then
// checks structural integrity — the shared page-number arbiter must
// keep legacy extension and session allocation from ever colliding.
func TestMVCCMixedLegacyAndSessions(t *testing.T) {
	const rounds = 30
	d, _ := newDB(t, concurrentOpts(2))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() { // legacy writer, big values force allocations
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tx, err := d.Begin()
			if err != nil {
				errs <- err
				return
			}
			if err := tx.Insert("t", []byte(fmt.Sprintf("legacy%04d", i)), make([]byte, 600)); err != nil {
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() { // MVCC sessions, also allocating
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			err := d.RunConcurrent(context.Background(), func(tx *CTx) error {
				return tx.Insert("t", []byte(fmt.Sprintf("mvcc%04d", i)), make([]byte, 600))
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		for _, pfx := range []string{"legacy", "mvcc"} {
			k := []byte(fmt.Sprintf("%s%04d", pfx, i))
			if _, ok, err := d.Get("t", k); err != nil || !ok {
				t.Fatalf("%s: ok=%v err=%v", k, ok, err)
			}
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCDeleteAndFree: session deletions that free pages chain them
// onto the shared freelist; a later legacy allocation must be able to
// reuse them without corruption.
func TestMVCCDeleteAndFree(t *testing.T) {
	d, _ := newDB(t, concurrentOpts(1))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	big := make(map[string]string)
	for i := 0; i < 40; i++ {
		big[fmt.Sprintf("k%03d", i)] = string(make([]byte, 400))
	}
	mustCommitKV(t, d, "t", big)

	err := d.RunConcurrent(context.Background(), func(tx *CTx) error {
		for i := 0; i < 40; i++ {
			if _, err := tx.Delete("t", []byte(fmt.Sprintf("k%03d", i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	free, err := d.pg.FreePageCount()
	if err != nil {
		t.Fatal(err)
	}
	if free == 0 {
		t.Fatal("session frees never reached the shared freelist")
	}
	// Legacy writer reuses the freed pages.
	refill := make(map[string]string)
	for i := 0; i < 40; i++ {
		refill[fmt.Sprintf("r%03d", i)] = string(make([]byte, 400))
	}
	mustCommitKV(t, d, "t", refill)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCGroupMergesStreams checks the group queue merges concurrent
// session streams: K disjoint-page sessions opened together must flush
// as ONE group (the Kth enqueue triggers the merged CommitStreams
// flush — no member can finish earlier, so the grouping is
// deterministic), and all writes land.
func TestMVCCGroupMergesStreams(t *testing.T) {
	const workers = 4
	d, _ := newDB(t, concurrentOpts(workers))
	txs := make([]*CTx, workers)
	for w := 0; w < workers; w++ {
		table := fmt.Sprintf("t%d", w)
		if err := d.CreateTable(table); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Metrics().Count(metrics.GroupCommits)
	for w := 0; w < workers; w++ {
		tx, err := d.BeginConcurrent()
		if err != nil {
			t.Fatal(err)
		}
		// Disjoint tables → disjoint pages → no conflicts, so all four
		// reach the queue and merge.
		if err := tx.Insert(fmt.Sprintf("t%d", w), []byte("k"), []byte(fmt.Sprintf("v%d", w))); err != nil {
			t.Fatal(err)
		}
		txs[w] = tx
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := txs[w].Commit(); err != nil {
				errs <- fmt.Errorf("w%d: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if v, ok, err := d.Get(fmt.Sprintf("t%d", w), []byte("k")); err != nil || !ok || string(v) != fmt.Sprintf("v%d", w) {
			t.Fatalf("t%d: %q ok=%v err=%v", w, v, ok, err)
		}
	}
	if after := d.Metrics().Count(metrics.GroupCommits); after != before+1 {
		t.Fatalf("want exactly one merged group flush, got %d -> %d", before, after)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCReadOnlyCommit: a session that writes nothing commits as a
// no-op — no seq, no frames, no conflict claims.
func TestMVCCReadOnlyCommit(t *testing.T) {
	d, _ := newDB(t, concurrentOpts(1))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommitKV(t, d, "t", map[string]string{"k": "v"})
	frames := d.jrn.FramesSinceCheckpoint()
	tx, err := d.BeginConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.Get("t", []byte("k")); !ok {
		t.Fatal("read failed")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.Seq() != 0 {
		t.Fatalf("read-only session got seq %d", tx.Seq())
	}
	if got := d.jrn.FramesSinceCheckpoint(); got != frames {
		t.Fatalf("read-only commit logged frames: %d -> %d", frames, got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCSurvivesCheckpoint: sessions keep committing while explicit
// checkpoints truncate the log; diffs staged against checkpointed bases
// must convert to full frames, not replay from zero.
func TestMVCCSurvivesCheckpoint(t *testing.T) {
	d, _ := newDB(t, concurrentOpts(1))
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := d.RunConcurrent(context.Background(), func(tx *CTx) error {
			return tx.Insert("t", []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
		})
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if err := d.Checkpoint(); err != nil && !errors.Is(err, ErrBusySnapshot) {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		v, ok, err := d.Get("t", []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("k%02d: %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
