// Structured backpressure errors. The ErrBusy sentinel stays the
// programmatic contract (errors.Is keeps working everywhere), but the
// value surfaced from a Begin/commit stall is a *BusyError carrying
// what an operator — or the serving layer's retry-advice wire field —
// needs: which limit tripped, the space situation at the trip, which
// shard, and a suggested backoff.
package db

import (
	"errors"
	"fmt"
	"time"
)

// SuggestedBusyBackoff is the default retry advice attached to shed
// writes: the stall loop's backoff cap, long enough for an urgent
// checkpoint round to free space.
const SuggestedBusyBackoff = stallBackoffMax

// BusyError is the structured form of ErrBusy: a write stalled by
// NVRAM backpressure past its deadline and was rolled back cleanly.
// errors.Is(err, ErrBusy) matches it; errors.As extracts it.
type BusyError struct {
	// Shard is the engine shard that shed the write, or -1 for an
	// unsharded database (the shard layer annotates it on the way out).
	Shard int
	// Watermark names the limit that tripped: "begin-admission" (hard
	// watermark at Begin), "commit-log-full" (ErrLogFull retry loop),
	// "group-deadline" (group commit abandoned), "prepare-log-full"
	// (2PC prepare), "mvcc-commit" (concurrent session commit),
	// "checkpointer-stalled" (the health watchdog latched the
	// background checkpointer stalled, so waiting cannot help).
	Watermark string
	// Avail and Hard are the heap pages available and the hard
	// watermark at the moment the deadline expired.
	Avail, Hard int
	// Backoff is the suggested wait before retrying — long enough for
	// an urgent checkpoint round to free space.
	Backoff time.Duration
	// Cause is the deadline that expired (a context error or the
	// CommitTimeout description).
	Cause error
}

func (e *BusyError) Error() string {
	msg := fmt.Sprintf("%v [%s: %d pages available, hard watermark %d, retry after %v",
		ErrBusy, e.Watermark, e.Avail, e.Hard, e.Backoff)
	if e.Shard >= 0 {
		msg += fmt.Sprintf(", shard %d", e.Shard)
	}
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg + "]"
}

// Unwrap makes errors.Is(err, ErrBusy) and errors.Is against the
// underlying cause (e.g. context.DeadlineExceeded) both match.
func (e *BusyError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrBusy, e.Cause}
	}
	return []error{ErrBusy}
}

// busy builds the structured error for one expired stall, sampling the
// space situation at the trip.
func (dl deadline) busy(where string, cause error) *BusyError {
	be := &BusyError{Shard: -1, Watermark: where, Backoff: stallBackoffMax, Cause: cause}
	if dl.d != nil && dl.d.pressure != nil {
		be.Avail = dl.d.pressure.avail()
		be.Hard = dl.d.pressure.hard
	}
	return be
}

// WithShard returns err with the shard id annotated when err carries a
// BusyError that has none yet; any other error passes through. The
// shard layer calls it so multi-engine callers learn which engine shed.
func WithShard(err error, shard int) error {
	var be *BusyError
	if errors.As(err, &be) && be.Shard < 0 {
		cp := *be
		cp.Shard = shard
		return &cp
	}
	return err
}
