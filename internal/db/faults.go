// Media-fault handling for the database layer: bounded retry of
// transient block-device errors, the degraded read-only latch for
// permanent database-file damage, and the background media scrubber
// auditing the NVRAM log's durable image.
package db

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pager"
	"repro/internal/simclock"
)

// ErrDegraded is the sentinel wrapped by every operation refused in
// degraded read-only mode. A DB degrades when the database file itself
// is damaged beyond the WAL's ability to repair it: recovery found
// unreadable checkpointed pages (SalvageReport.DBFileDamaged), or a
// runtime write hit a permanent device error. The handle stays open —
// reads keep serving the last good snapshot out of the page cache and
// the log — but Begin, CreateTable, DropTable and Checkpoint fail with
// an error matching errors.Is(err, ErrDegraded).
var ErrDegraded = errors.New("db: degraded read-only mode")

// Retry policy for transient device errors: up to ioRetryLimit retries
// per operation with doubling backoff, so a controller hiccup
// (blockdev's transient EIO) is invisible to callers.
const (
	ioRetryLimit   = 2
	ioRetryBackoff = 100 * time.Microsecond
)

// retryFile wraps the database file with the retry policy. Every
// consumer of the file — pager misses, journal backfill, checkpoint
// writeback — goes through it, so a transient EIO anywhere on the db
// path is absorbed identically. A permanent device error is reported to
// onPermanent (the DB's degraded latch) before being returned.
type retryFile struct {
	inner       pager.DBFile
	clock       *simclock.Clock
	m           *metrics.Counters
	onPermanent func(error)
}

func newRetryFile(inner pager.DBFile, clock *simclock.Clock, m *metrics.Counters, onPermanent func(error)) *retryFile {
	return &retryFile{inner: inner, clock: clock, m: m, onPermanent: onPermanent}
}

func (r *retryFile) PageSize() int { return r.inner.PageSize() }

// do runs op, retrying transient errors with doubling backoff. The
// backoff is charged to the virtual clock — retries cost simulated
// time, like everything else on the device path.
func (r *retryFile) do(op func() error) error {
	err := op()
	for attempt := 0; attempt < ioRetryLimit && blockdev.IsTransient(err); attempt++ {
		r.clock.Advance(ioRetryBackoff << attempt)
		r.m.Inc(metrics.IORetries, 1)
		err = op()
	}
	if err != nil && errors.Is(err, blockdev.ErrIO) && !blockdev.IsTransient(err) && r.onPermanent != nil {
		r.onPermanent(err)
	}
	return err
}

func (r *retryFile) ReadPage(pgno uint32, buf []byte) error {
	return r.do(func() error { return r.inner.ReadPage(pgno, buf) })
}

func (r *retryFile) WritePage(pgno uint32, data []byte) error {
	return r.do(func() error { return r.inner.WritePage(pgno, data) })
}

func (r *retryFile) Sync() error {
	return r.do(func() error { return r.inner.Sync() })
}

// degrade latches the DB into degraded read-only mode. First cause
// wins; later calls are no-ops.
func (d *DB) degrade(cause error) {
	d.degradedMu.Lock()
	if d.degradedErr == nil {
		d.degradedErr = fmt.Errorf("%w: %v", ErrDegraded, cause)
	}
	d.degradedMu.Unlock()
}

// ForceDegrade latches the degraded read-only mode exactly as a
// permanent device error would — a fault-injection hook for harnesses
// staging multi-fault scenarios (e.g. a replication source degrading
// mid-re-seed). Irreversible, like the real latch.
func (d *DB) ForceDegrade(cause error) {
	if cause == nil {
		cause = errors.New("fault injection")
	}
	d.degrade(cause)
}

// Degraded returns the latched degraded-mode error (matching
// errors.Is(err, ErrDegraded)), or nil while the DB is healthy.
func (d *DB) Degraded() error {
	d.degradedMu.Lock()
	defer d.degradedMu.Unlock()
	return d.degradedErr
}

// Salvage returns the journal's crash-recovery salvage report (nvwal
// mode after recovering an existing log; nil otherwise).
func (d *DB) Salvage() *core.SalvageReport {
	if nv, ok := d.jrn.(*core.NVWAL); ok {
		return nv.Salvage()
	}
	return nil
}

// maybeKickScrub nudges the background scrubber once ScrubEvery commits
// have accumulated since the last pass.
func (d *DB) maybeKickScrub() {
	if d.scrubKick == nil {
		return
	}
	if d.scrubSince.Add(1) < int64(d.opts.ScrubEvery) {
		return
	}
	d.scrubSince.Store(0)
	select {
	case d.scrubKick <- struct{}{}:
	default:
	}
}

// scrubLoop is the background media scrubber (Options.ScrubEvery):
// each kick audits the durable image of the log's committed frames
// against their chained CRCs — catching silent media rot (a stuck
// NVRAM line, decayed cells) while the volatile copies are still good,
// instead of discovering it in the next crash's salvage. When a pass
// finds bad frames the implicated blocks are already marked for
// quarantine; a checkpoint then rewrites the affected pages from DRAM
// and retires the blocks — the self-healing path.
func (d *DB) scrubLoop(nv *core.NVWAL) {
	defer close(d.scrubDone)
	tr := d.health.Tracker("scrubber")
	for {
		select {
		case <-d.scrubQuit:
			return
		case <-d.scrubKick:
		}
		tr.Arm()
		start := d.plat.Clock.Now()
		res := nv.Scrub()
		tr.Observe(d.plat.Clock.Now() - start)
		tr.Beat()
		tr.Disarm()
		if res.BadFrames == 0 || d.Degraded() != nil {
			continue
		}
		// Best effort: a busy snapshot defers healing to the next kick.
		if err := d.Checkpoint(); err != nil && !errors.Is(err, ErrBusySnapshot) {
			d.ckptErrMu.Lock()
			if d.ckptErr == nil {
				d.ckptErr = fmt.Errorf("db: scrub-triggered checkpoint: %w", err)
			}
			d.ckptErrMu.Unlock()
		}
	}
}

// stopBackground shuts down the background checkpointer and scrubber
// goroutines, at most once.
func (d *DB) stopBackground() {
	d.closeOnce.Do(func() {
		if d.ckptQuit != nil {
			close(d.ckptQuit)
			<-d.ckptDone
		}
		if d.scrubQuit != nil {
			close(d.scrubQuit)
			<-d.scrubDone
		}
	})
}
