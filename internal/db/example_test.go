package db_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/platform"
)

// Example shows the end-to-end NVWAL story: commit, crash, recover.
func Example() {
	plat, err := platform.NewNexus5()
	if err != nil {
		log.Fatal(err)
	}
	opts := db.Options{Journal: db.JournalNVWAL, NVWAL: core.VariantUHLSDiff()}
	d, err := db.Open(plat, "example.db", opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.CreateTable("kv"); err != nil {
		log.Fatal(err)
	}
	tx, _ := d.Begin()
	tx.Insert("kv", []byte("greeting"), []byte("hello"))
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	plat.PowerFail(memsim.FailDropAll, 1)
	if err := plat.Reboot(); err != nil {
		log.Fatal(err)
	}
	d, err = db.Open(plat, "example.db", opts)
	if err != nil {
		log.Fatal(err)
	}
	v, ok, _ := d.Get("kv", []byte("greeting"))
	fmt.Println(ok, string(v))
	// Output: true hello
}

// ExampleDB_BeginRead demonstrates snapshot isolation: the reader's
// view is frozen while the writer commits.
func ExampleDB_BeginRead() {
	plat, _ := platform.NewNexus5()
	d, _ := db.Open(plat, "snap.db", db.Options{Journal: db.JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	d.CreateTable("t")

	tx, _ := d.Begin()
	tx.Insert("t", []byte("k"), []byte("before"))
	tx.Commit()

	snap, _ := d.BeginRead()
	defer snap.Close()

	tx, _ = d.Begin()
	tx.Insert("t", []byte("k"), []byte("after"))
	tx.Commit()

	v1, _, _ := snap.Get("t", []byte("k"))
	v2, _, _ := d.Get("t", []byte("k"))
	fmt.Println(string(v1), string(v2))
	// Output: before after
}
