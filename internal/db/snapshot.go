package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/btree"
	"repro/internal/pager"
)

// ErrNoSnapshots is returned by BeginRead under a journal mode without
// snapshot support (the rollback journal updates the database file in
// place, so readers cannot proceed against a stable version — exactly
// the limitation WAL mode lifted in SQLite).
var ErrNoSnapshots = errors.New("db: journal mode does not support snapshot reads")

// ErrBusySnapshot is returned by Checkpoint while read transactions are
// open: truncating the log would invalidate their marks.
var ErrBusySnapshot = errors.New("db: checkpoint blocked by open read transactions")

// ReadTx is a point-in-time read transaction: it sees the database
// exactly as of the moment BeginRead ran, regardless of writes
// committed afterwards — the reader/writer concurrency property of WAL
// (§2: dirty pages are appended to the log, "the original pages remain
// intact in the database file").
type ReadTx struct {
	d     *DB
	store *snapshotStore
	trees map[string]*btree.Tree
	done  bool
}

// BeginRead opens a read transaction at the current committed state.
// Read transactions may be interleaved with write transactions and
// commits; they block checkpointing until closed. BeginRead never takes
// the writer slot (a writer may open a snapshot mid-transaction), and
// ReadTx methods run concurrently with the writer and with each other —
// the WAL reader/writer property the engine exists to provide. One
// ReadTx must not be shared between goroutines.
func (d *DB) BeginRead() (*ReadTx, error) {
	sj, ok := d.jrn.(pager.SnapshotJournal)
	if !ok {
		return nil, ErrNoSnapshots
	}
	// ckptMu makes register-and-mark atomic against the checkpoint
	// gate's mark scan, so the mark can never straddle a round that
	// would invalidate it.
	d.ckptMu.Lock()
	d.readers.Add(1)
	mark := sj.Mark()
	d.openMarks[mark]++
	d.ckptMu.Unlock()
	return &ReadTx{
		d: d,
		store: &snapshotStore{
			jrn:   sj,
			dbf:   d.dbf,
			mark:  mark,
			pages: make(map[uint32][]byte),
		},
		trees: make(map[string]*btree.Tree),
	}, nil
}

// Close releases the snapshot, unblocking checkpoints. A background
// checkpointer waiting out this reader's mark is kicked to retry.
func (r *ReadTx) Close() {
	if r.done {
		return
	}
	r.done = true
	d := r.d
	d.ckptMu.Lock()
	d.readers.Add(-1)
	if n := d.openMarks[r.store.mark]; n <= 1 {
		delete(d.openMarks, r.store.mark)
	} else {
		d.openMarks[r.store.mark] = n - 1
	}
	d.ckptMu.Unlock()
	d.kickCheckpoint()
}

// snapshotCatalog parses the table catalog as of the snapshot.
func (r *ReadTx) snapshotCatalog() (map[string]uint32, error) {
	hdr, err := r.store.Get(1)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	out := make(map[string]uint32, n)
	for i := 0; i < n; i++ {
		off := catalogOff + 2 + i*tableEntry
		name := strings.TrimRight(string(hdr[off:off+tableNameLen]), "\x00")
		out[name] = binary.LittleEndian.Uint32(hdr[off+tableNameLen:])
	}
	return out, nil
}

func (r *ReadTx) tree(table string) (*btree.Tree, error) {
	if r.done {
		return nil, errors.New("db: read transaction closed")
	}
	if t, ok := r.trees[table]; ok {
		return t, nil
	}
	cat, err := r.snapshotCatalog()
	if err != nil {
		return nil, err
	}
	root, ok := cat[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	t := btree.New(r.store, root, btree.Config{Reserved: r.d.reserved()})
	r.trees[table] = t
	return t, nil
}

// Get reads a record as of the snapshot.
func (r *ReadTx) Get(table string, key []byte) ([]byte, bool, error) {
	t, err := r.tree(table)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Scan visits the snapshot's records in ascending key order.
func (r *ReadTx) Scan(table string, fn func(key, value []byte) bool) error {
	t, err := r.tree(table)
	if err != nil {
		return err
	}
	return t.Scan(fn)
}

// ScanRange visits snapshot records with start <= key < end.
func (r *ReadTx) ScanRange(table string, start, end []byte, fn func(key, value []byte) bool) error {
	t, err := r.tree(table)
	if err != nil {
		return err
	}
	return t.ScanRange(start, end, fn)
}

// Count returns the snapshot's record count for table.
func (r *ReadTx) Count(table string) (int, error) {
	t, err := r.tree(table)
	if err != nil {
		return 0, err
	}
	return t.Count()
}

// snapshotStore is a read-only btree.PageStore reconstructing pages as
// of a journal mark: log frames up to the mark override the database
// file.
type snapshotStore struct {
	jrn   pager.SnapshotJournal
	dbf   pager.DBFile
	mark  int
	pages map[uint32][]byte
}

func (s *snapshotStore) PageSize() int { return s.dbf.PageSize() }

func (s *snapshotStore) Get(pgno uint32) ([]byte, error) {
	if buf, ok := s.pages[pgno]; ok {
		return buf, nil
	}
	buf, ok := s.jrn.PageVersionAt(pgno, s.mark)
	if !ok {
		buf = make([]byte, s.dbf.PageSize())
		if err := s.dbf.ReadPage(pgno, buf); err != nil {
			return nil, err
		}
	}
	s.pages[pgno] = buf
	return buf, nil
}

func (s *snapshotStore) Allocate() (uint32, []byte, error) {
	return 0, nil, errors.New("db: snapshot store is read-only")
}

func (s *snapshotStore) Free(uint32) error {
	return errors.New("db: snapshot store is read-only")
}

func (s *snapshotStore) MarkDirty(uint32) {
	panic("db: write through a read transaction")
}
