package db

import (
	"errors"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/platform"
)

func faultOpts() Options {
	return Options{
		Journal:         JournalNVWAL,
		NVWAL:           core.VariantUHLSDiff(),
		CheckpointLimit: -1,
	}
}

func mustCommit(t testing.TB, d *DB, table, key, value string) {
	t.Helper()
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(table, []byte(key), []byte(value)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// Transient device errors on the database file — a failed program, a
// failed cache flush — must be absorbed by the bounded retry: the
// checkpoint succeeds, callers never see the error, and io_retries
// counts the absorbed faults.
func TestTransientEIOInvisibleToCheckpoint(t *testing.T) {
	plat, err := platform.NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(plat, "test.db", faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, d, "t", "a", "1")

	plat.Flash.FailNextWrites(1)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with transient write EIO: %v", err)
	}
	after := plat.Metrics.Count(metrics.IORetries)
	if after < 1 {
		t.Fatalf("io_retries = %d, want >= 1", after)
	}

	mustCommit(t, d, "t", "a", "2")
	plat.Flash.FailNextSyncs(1)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with transient sync EIO: %v", err)
	}
	if got := plat.Metrics.Count(metrics.IORetries); got <= after {
		t.Fatalf("io_retries did not advance (%d -> %d)", after, got)
	}
	if err := d.Degraded(); err != nil {
		t.Fatalf("transient errors must not degrade the DB: %v", err)
	}
	if v, ok, err := d.Get("t", []byte("a")); err != nil || !ok || string(v) != "2" {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// A transient read EIO on a cold cache miss is retried invisibly too:
// reboot (emptying every cache), fail the next device read, and reopen.
func TestTransientEIOInvisibleToRead(t *testing.T) {
	plat, err := platform.NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	opts := faultOpts()
	d, err := Open(plat, "test.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, d, "t", "a", "1")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	plat.PowerFail(memsim.FailKeepCompleted, 1)
	if err := plat.Reboot(); err != nil {
		t.Fatal(err)
	}

	plat.Flash.FailNextReads(1)
	d, err = Open(plat, "test.db", opts)
	if err != nil {
		t.Fatalf("open with transient read EIO: %v", err)
	}
	if got := plat.Metrics.Count(metrics.IORetries); got < 1 {
		t.Fatalf("io_retries = %d, want >= 1", got)
	}
	if v, ok, err := d.Get("t", []byte("a")); err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// A permanent device error on the database file flips the DB into
// degraded read-only mode: writes and checkpoints are refused with
// ErrDegraded, while reads keep serving the last good state out of the
// log and cache.
func TestPermanentEIODegradesToReadOnly(t *testing.T) {
	plat, err := platform.NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(plat, "test.db", faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, d, "t", "a", "1")
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, d, "t", "a", "2")

	// Retire every device page backing the file except the header page,
	// so the dirty leaf page's writeback hits dead media.
	f, err := plat.FS.Open("test.db")
	if err != nil {
		t.Fatal(err)
	}
	for _, pg := range f.Extents()[1:] {
		plat.Flash.MarkBad(pg)
	}

	err = d.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint into dead media succeeded")
	}
	if !errors.Is(err, blockdev.ErrIO) || blockdev.IsTransient(err) {
		t.Fatalf("checkpoint error = %v, want permanent device error", err)
	}
	if derr := d.Degraded(); !errors.Is(derr, ErrDegraded) {
		t.Fatalf("Degraded() = %v, want ErrDegraded", derr)
	}

	// Writes are refused...
	if _, err := d.Begin(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Begin = %v, want ErrDegraded", err)
	}
	if err := d.CreateTable("u"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("CreateTable = %v, want ErrDegraded", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second Checkpoint = %v, want ErrDegraded", err)
	}
	// ...while reads keep serving the last good state.
	if v, ok, err := d.Get("t", []byte("a")); err != nil || !ok || string(v) != "2" {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	rtx, err := d.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := rtx.Get("t", []byte("a")); err != nil || !ok || string(v) != "2" {
		t.Fatalf("snapshot Get = (%q,%v,%v)", v, ok, err)
	}
	rtx.Close()
	if err := d.Close(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Close = %v, want ErrDegraded", err)
	}
}

// stageForMidCkptCrash builds a platform with a cleanly checkpointed
// database plus a round of post-checkpoint commits, ready for a second
// checkpoint. Single-goroutine on the virtual clock, so every run
// consumes an identical NVRAM-operation sequence.
func stageForMidCkptCrash(t *testing.T) (*platform.Platform, *DB) {
	t.Helper()
	plat, err := platform.NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(plat, "test.db", faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustCommit(t, d, "t", string(rune('a'+i)), "seed-value-000000000000")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustCommit(t, d, "t", string(rune('a'+i)), "post-ckpt-value-1111111")
	}
	return plat, d
}

// A crash in the middle of a checkpoint leaves the round's record in
// its backfill phase; recovery finishes the round by rewriting the
// recovered pages. When that writeback hits dead media, the open must
// not fail — it returns a usable handle together with ErrDegraded, the
// salvage report flags the database-file damage, and the surviving
// catalog stays readable. The crash instant is found by scanning every
// arm position across the checkpoint's operation window.
func TestOpenDegradedAfterMidCheckpointMediaDeath(t *testing.T) {
	// Dry run: measure the checkpoint's NVRAM-operation window.
	plat, d := stageForMidCkptCrash(t)
	c0 := plat.OpCount()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	delta := plat.OpCount() - c0
	d.Abandon()
	if delta <= 0 {
		t.Fatalf("checkpoint consumed no NVRAM ops")
	}

	for arm := int64(1); arm <= delta; arm++ {
		plat, d = stageForMidCkptCrash(t)
		plat.ArmCrash(arm, memsim.FailDropAll, 42)
		_ = d.Checkpoint()
		d.Abandon()
		plat.PowerFail(memsim.FailDropAll, 42)
		if err := plat.Reboot(); err != nil {
			t.Fatal(err)
		}
		f, err := plat.FS.Open("test.db")
		if err != nil {
			t.Fatal(err)
		}
		for _, pg := range f.Extents()[1:] {
			plat.Flash.MarkBad(pg)
		}
		d2, err := Open(plat, "test.db", faultOpts())
		if err == nil {
			// The crash landed outside the backfill window; recovery never
			// touched the database file. Try the next arm position.
			d2.Abandon()
			continue
		}
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("arm=%d: open error = %v, want ErrDegraded", arm, err)
		}
		if d2 == nil {
			t.Fatalf("arm=%d: degraded open returned no handle", arm)
		}
		if rep := d2.Salvage(); rep == nil || !rep.DBFileDamaged {
			t.Fatalf("arm=%d: salvage report = %v, want DBFileDamaged", arm, rep)
		}
		if !d2.HasTable("t") {
			t.Fatalf("arm=%d: catalog unreadable in degraded mode", arm)
		}
		if _, err := d2.Begin(); !errors.Is(err, ErrDegraded) {
			t.Fatalf("arm=%d: Begin = %v, want ErrDegraded", arm, err)
		}
		d2.Abandon()
		return
	}
	t.Fatalf("no arm position in [1,%d] produced a mid-backfill crash with db-file damage", delta)
}

// The background scrubber audits the durable image after every
// ScrubEvery commits and, via a checkpoint, heals silent media rot: a
// stuck NVRAM line freezes a commit mark's durable content, the scrub
// detects it, and the triggered checkpoint rewrites the pages from DRAM
// and quarantines the implicated blocks.
func TestScrubberDetectsAndHealsStuckLines(t *testing.T) {
	plat, err := platform.NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	opts := faultOpts()
	opts.Concurrent = true
	opts.ScrubEvery = 1
	d, err := Open(plat, "test.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	start, end := plat.Heap.HeapRange()
	plat.NVRAM.InjectFaults(memsim.FaultConfig{
		Seed:          99,
		StuckLineRate: 0.25,
		Ranges:        []memsim.AddrRange{{Start: start, End: end}},
	})

	deadline := time.Now().Add(20 * time.Second)
	commits := 0
	for plat.Metrics.Count(metrics.ScrubFramesBad) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no scrub detection after %d commits (checked=%d)",
				commits, plat.Metrics.Count(metrics.ScrubFramesChecked))
		}
		mustCommit(t, d, "t", "k", "value-0123456789abcdef")
		commits++
		time.Sleep(time.Millisecond)
	}
	if plat.Metrics.Count(metrics.ScrubFramesChecked) == 0 {
		t.Fatal("scrub detected damage without checking frames")
	}
	// The scrubber's self-heal checkpoint retires the implicated blocks
	// into the heap's persistent quarantine.
	for plat.Metrics.Count(metrics.BlocksQuarantined) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("implicated blocks never reached quarantine")
		}
		time.Sleep(time.Millisecond)
	}
	// The healed database still serves the correct data.
	if v, ok, err := d.Get("t", []byte("k")); err != nil || !ok || string(v) != "value-0123456789abcdef" {
		t.Fatalf("Get after heal = (%q,%v,%v)", v, ok, err)
	}
	plat.NVRAM.InjectFaults(memsim.FaultConfig{})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// The scrubber goroutine racing a machine crash (run under -race): the
// crash trigger freezes the durable image mid-workload while the
// scrubber keeps auditing, then the platform power-fails and recovers.
// Recovery must stay consistent across every round.
func TestScrubberRacesPowerFail(t *testing.T) {
	plat, err := platform.NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	opts := faultOpts()
	opts.Concurrent = true
	opts.ScrubEvery = 1
	d, err := Open(plat, "test.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 4; round++ {
		plat.ArmCrash(50+int64(round)*377, memsim.FailKeepCompleted, int64(round))
		for i := 0; i < 25; i++ {
			tx, err := d.Begin()
			if err != nil {
				break
			}
			if err := tx.Insert("t", []byte{byte('a' + i%8)}, []byte("v")); err != nil {
				tx.Rollback()
				break
			}
			if err := tx.Commit(); err != nil {
				break
			}
		}
		d.Abandon()
		plat.PowerFail(memsim.FailKeepCompleted, int64(round))
		if err := plat.Reboot(); err != nil {
			t.Fatal(err)
		}
		d, err = Open(plat, "test.db", opts)
		if err != nil {
			t.Fatalf("round %d: recovery open: %v", round, err)
		}
		if err := d.Check(); err != nil {
			t.Fatalf("round %d: structural check: %v", round, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
