// Replication export surface. A primary database hands its log to a
// shipping agent through two hooks: ExportSince streams committed
// frame ranges in journal mark space (the incremental path), and
// ExportPages captures a full point-in-time page image (the re-seed
// path a replica falls back to when its cursor predates a completed
// checkpoint, or when it detects divergence).
package db

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pager"
)

// ErrNoExport marks journal modes without a replication hook; only
// NVWAL-journaled databases ship log generations.
var ErrNoExport = fmt.Errorf("db: journal mode has no export hook")

// ExportSince returns the committed NVWAL frames in [from, Mark()).
// ok=false means the range was retired by a checkpoint (or lies past
// the mark) and the caller must re-seed via ExportPages.
func (d *DB) ExportSince(from int) (core.ExportBatch, bool, error) {
	w, ok := d.jrn.(*core.NVWAL)
	if !ok {
		return core.ExportBatch{}, false, ErrNoExport
	}
	b, ok := w.ExportSince(from)
	return b, ok, nil
}

// PageSnapshot is a full database image at one journal mark: every
// page's content with the log applied through Mark. It is the re-seed
// payload for replication and is internally consistent — the mark is
// pinned against checkpointing for the duration of the capture.
type PageSnapshot struct {
	Mark     int
	PageSize int
	Pages    []pager.Frame
}

// ExportPages captures a full point-in-time snapshot. The mark is
// pinned exactly the way BeginRead pins a snapshot reader, so a
// concurrent incremental checkpoint can never invalidate the images
// mid-capture.
func (d *DB) ExportPages() (*PageSnapshot, error) {
	sj, ok := d.jrn.(pager.SnapshotJournal)
	if !ok {
		return nil, ErrNoExport
	}
	d.ckptMu.Lock()
	d.readers.Add(1)
	mark := sj.Mark()
	d.openMarks[mark]++
	d.ckptMu.Unlock()
	defer func() {
		d.ckptMu.Lock()
		d.readers.Add(-1)
		if n := d.openMarks[mark]; n <= 1 {
			delete(d.openMarks, mark)
		} else {
			d.openMarks[mark] = n - 1
		}
		d.ckptMu.Unlock()
		d.kickCheckpoint()
	}()

	readAt := func(pgno uint32) ([]byte, error) {
		if buf, ok := sj.PageVersionAt(pgno, mark); ok {
			return buf, nil
		}
		buf := make([]byte, d.dbf.PageSize())
		if err := d.dbf.ReadPage(pgno, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}

	// The page count lives in the header page; reading it at the pinned
	// mark keeps the capture self-consistent even while writers extend
	// the file.
	hdr, err := readAt(1)
	if err != nil {
		return nil, err
	}
	count := pager.HeaderPageCount(hdr)
	snap := &PageSnapshot{
		Mark:     mark,
		PageSize: d.dbf.PageSize(),
		Pages:    make([]pager.Frame, 0, count),
	}
	snap.Pages = append(snap.Pages, pager.Frame{Pgno: 1, Data: hdr})
	for pgno := uint32(2); pgno <= count; pgno++ {
		data, err := readAt(pgno)
		if err != nil {
			return nil, err
		}
		snap.Pages = append(snap.Pages, pager.Frame{Pgno: pgno, Data: data})
	}
	return snap, nil
}

// ParseCatalog decodes the table catalog out of a header-page image —
// the same layout CreateTable maintains. Replicas use it to resolve
// table roots against their applied page state without a DB handle.
func ParseCatalog(hdr []byte) map[string]uint32 {
	n := int(binary.LittleEndian.Uint16(hdr[catalogOff:]))
	out := make(map[string]uint32, n)
	for i := 0; i < n; i++ {
		off := catalogOff + 2 + i*tableEntry
		name := strings.TrimRight(string(hdr[off:off+tableNameLen]), "\x00")
		out[name] = binary.LittleEndian.Uint32(hdr[off+tableNameLen:])
	}
	return out
}

// TreeReserved reports the per-page reserved byte count a btree over
// exported pages must use to match this database's physical layout.
func (d *DB) TreeReserved() int { return d.reserved() }
