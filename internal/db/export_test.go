package db

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestExportPagesSnapshot(t *testing.T) {
	plat, err := platform.NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(plat, "exp.db", Options{Journal: JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tx.Insert("kv", []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	snap, err := d.ExportPages()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Mark <= 0 || snap.PageSize <= 0 || len(snap.Pages) == 0 {
		t.Fatalf("degenerate snapshot: %+v", snap)
	}
	if snap.Pages[0].Pgno != 1 {
		t.Fatalf("snapshot must lead with the header page, got page %d", snap.Pages[0].Pgno)
	}
	cat := ParseCatalog(snap.Pages[0].Data)
	if _, ok := cat["kv"]; !ok {
		t.Fatalf("catalog in exported header lacks table kv: %v", cat)
	}

	// The incremental hook covers [0, Mark) gaplessly before any
	// checkpoint has retired frames.
	b, ok, err := d.ExportSince(0)
	if err != nil || !ok {
		t.Fatalf("ExportSince(0) = ok=%v err=%v", ok, err)
	}
	if b.To != snap.Mark || len(b.Frames) != b.To {
		t.Fatalf("incremental range [%d,%d) with %d frames, want To=%d", b.From, b.To, len(b.Frames), snap.Mark)
	}
}
