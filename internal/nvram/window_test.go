package nvram

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func TestWindowTranslatesAddresses(t *testing.T) {
	clock := simclock.New()
	dev := NewDevice(memsim.Config{Size: 1 << 16}, clock, &metrics.Counters{})
	win := dev.Window(4096, 8192)
	if got := win.Size(); got != 8192 {
		t.Fatalf("window Size = %d, want 8192", got)
	}
	win.PutUint64(16, 0xDEADBEEF)
	if got := dev.Uint64(4096 + 16); got != 0xDEADBEEF {
		t.Fatalf("window write landed at %#x via device read, want 0xDEADBEEF, got %#x", 4096+16, got)
	}
	if got := win.Uint64(16); got != 0xDEADBEEF {
		t.Fatalf("window read = %#x, want 0xDEADBEEF", got)
	}
	// Persist through the window, then verify the durable image.
	win.MemoryBarrier()
	win.Syscall()
	win.Flush(16, 24)
	win.MemoryBarrier()
	win.PersistBarrier()
	var buf [8]byte
	if err := win.ReadPersistedChecked(16, buf[:]); err != nil {
		t.Fatalf("ReadPersistedChecked: %v", err)
	}
	if buf[0] != 0xEF {
		t.Fatalf("durable image through window = %x, want little-endian 0xDEADBEEF", buf)
	}
}

func TestWindowOfWindow(t *testing.T) {
	clock := simclock.New()
	dev := NewDevice(memsim.Config{Size: 1 << 16}, clock, &metrics.Counters{})
	outer := dev.Window(8192, 16384)
	inner := outer.Window(4096, 4096)
	inner.PutUint32(0, 77)
	if got := dev.Uint32(8192 + 4096); got != 77 {
		t.Fatalf("nested window write = %d at wrong address", got)
	}
}

func TestWindowBoundsChecked(t *testing.T) {
	clock := simclock.New()
	dev := NewDevice(memsim.Config{Size: 1 << 14}, clock, &metrics.Counters{})
	for _, c := range []struct {
		base uint64
		size int
	}{
		{0, 1 << 15},       // too big
		{1 << 13, 1 << 14}, // past the end
		{7, 4096},          // unaligned base
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Window(%d, %d) did not panic", c.base, c.size)
				}
			}()
			dev.Window(c.base, c.size)
		}()
	}
}
