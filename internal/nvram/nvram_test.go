package nvram

import (
	"testing"
	"time"

	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func newDev(t testing.TB) *Device {
	t.Helper()
	return NewDevice(Config{Size: 1 << 20}, simclock.New(), &metrics.Counters{})
}

func TestUint64RoundTrip(t *testing.T) {
	d := newDev(t)
	d.PutUint64(128, 0xDEADBEEFCAFEBABE)
	if got := d.Uint64(128); got != 0xDEADBEEFCAFEBABE {
		t.Fatalf("Uint64 = %#x", got)
	}
}

func TestUint32RoundTrip(t *testing.T) {
	d := newDev(t)
	d.PutUint32(64, 0xFEEDFACE)
	if got := d.Uint32(64); got != 0xFEEDFACE {
		t.Fatalf("Uint32 = %#x", got)
	}
}

func TestAligned8ByteWriteIsAtomicAcrossCrash(t *testing.T) {
	// The §4.1 assumption: an aligned 8-byte store either fully persists
	// or not at all, under every failure policy and seed.
	for seed := int64(0); seed < 32; seed++ {
		d := newDev(t)
		d.PutUint64(256, 0x1111111122222222)
		d.Flush(256, 264)
		d.PowerFail(memsim.FailAdversarial, seed)
		d.Recover()
		got := d.Uint64(256)
		if got != 0 && got != 0x1111111122222222 {
			t.Fatalf("seed %d: torn 8-byte write: %#x", seed, got)
		}
	}
}

func TestCommitMarkOrderingViaFlushValue(t *testing.T) {
	d := newDev(t)
	d.PutUint64(0, 42)
	d.MemoryBarrier()
	d.FlushValue(0, 8)
	d.MemoryBarrier()
	d.PersistBarrier()
	d.PowerFail(memsim.FailDropAll, 1)
	d.Recover()
	if got := d.Uint64(0); got != 42 {
		t.Fatalf("persisted commit mark = %d, want 42", got)
	}
}

func TestWriteLatencyKnob(t *testing.T) {
	d := newDev(t)
	d.SetWriteLatency(1942 * time.Nanosecond)
	if got := d.WriteLatency(); got != 1942*time.Nanosecond {
		t.Fatalf("WriteLatency = %v", got)
	}
}

func TestDomainAccessor(t *testing.T) {
	d := newDev(t)
	if d.Domain() == nil {
		t.Fatal("Domain() = nil")
	}
	if d.Size() != 1<<20 {
		t.Fatalf("Size = %d", d.Size())
	}
	if d.LineSize() <= 0 {
		t.Fatalf("LineSize = %d", d.LineSize())
	}
}
