// Package nvram models the byte-addressable NVRAM DIMM of the paper's
// platform (the Tuna board's latency-adjustable DRAM bank, or the Nexus
// 5's reserved DRAM range). It wraps a memsim.Domain with typed
// little-endian accessors that the persistent data structures — the
// Heapo metadata block and the NVWAL log — are built from.
//
// A Device guarantees 8-byte atomic writes, the assumption NVWAL's
// commit mark relies on (§4.1, following BPFS): even across a power
// failure an aligned 8-byte store is never torn.
package nvram

import (
	"encoding/binary"
	"time"

	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Device is one NVRAM DIMM: an address space with persistence controls.
// A Device may be a window onto part of a larger DIMM (see Window):
// every address it accepts is relative to the window base, so persistent
// data structures built on a windowed device are position-independent
// within the domain.
type Device struct {
	dom  *memsim.Domain
	base uint64 // window offset into the domain
	size int    // window length; 0 = whole domain
}

// Config mirrors memsim.Config; see that package for field semantics and
// defaults.
type Config = memsim.Config

// NewDevice creates an NVRAM device over a fresh persistence domain.
func NewDevice(cfg Config, clock *simclock.Clock, m *metrics.Counters) *Device {
	return &Device{dom: memsim.New(cfg, clock, m)}
}

// Window returns a device view covering size bytes of this device
// starting at base. The view translates every address it is given by
// base, so clients (heapo, NVWAL) run unmodified on a carved-out slice
// of a shared DIMM — the sharded engine gives each shard one window so
// all shards crash and survive as a single persistence domain. The
// window must lie inside the device and be cache-line aligned.
func (d *Device) Window(base uint64, size int) *Device {
	if size <= 0 || base+uint64(size) > uint64(d.Size()) {
		panic("nvram: window out of range")
	}
	if ls := uint64(d.LineSize()); base%ls != 0 {
		panic("nvram: window base not line-aligned")
	}
	return &Device{dom: d.dom, base: d.base + base, size: size}
}

// Domain exposes the underlying persistence domain for components that
// need raw flush/barrier control. Note that domain addresses are
// absolute even when the device is a window.
func (d *Device) Domain() *memsim.Domain { return d.dom }

// Size returns the device capacity in bytes.
func (d *Device) Size() int {
	if d.size > 0 {
		return d.size
	}
	return d.dom.Size()
}

// LineSize returns the cache line size governing flush granularity.
func (d *Device) LineSize() int { return d.dom.LineSize() }

// SetWriteLatency adjusts the device's write latency, the independent
// variable of Figures 7 and 9.
func (d *Device) SetWriteLatency(w time.Duration) { d.dom.SetWriteLatency(w) }

// WriteLatency returns the current write latency.
func (d *Device) WriteLatency() time.Duration { return d.dom.WriteLatency() }

// Write stores p at addr through the cache hierarchy.
func (d *Device) Write(addr uint64, p []byte) { d.dom.Write(d.base+addr, p) }

// WriteV stores the concatenation of parts contiguously at addr through
// the cache hierarchy, with the cost model of a single Write over the
// combined range — one store burst, one op. The commit path uses it to
// encode a frame header and its payload straight into reserved log
// space without an intermediate DRAM image.
func (d *Device) WriteV(addr uint64, parts ...[]byte) { d.dom.WriteV(d.base+addr, parts...) }

// Read loads len(p) bytes at addr into p.
func (d *Device) Read(addr uint64, p []byte) { d.dom.Read(d.base+addr, p) }

// ReadChecked loads len(p) bytes at addr into p through the ECC-checked
// path: with an installed fault model it may return an uncorrectable
// media error (wrapping memsim.ErrMediaRead) instead of data. Recovery
// and scrub code must use this entry point.
func (d *Device) ReadChecked(addr uint64, p []byte) error { return d.dom.ReadChecked(d.base+addr, p) }

// ReadPersistedChecked is the ECC-checked read of the durable image —
// what the media would hand back after a crash right now. Scrubbers use
// it to audit persisted content whose volatile copy is still clean.
func (d *Device) ReadPersistedChecked(addr uint64, p []byte) error {
	return d.dom.ReadPersistedChecked(d.base+addr, p)
}

// InjectFaults installs (or removes, with a zero config) the media-
// fault model on the underlying domain.
func (d *Device) InjectFaults(cfg memsim.FaultConfig) { d.dom.InjectFaults(cfg) }

// Flush issues cache-line flushes covering [start, end). It does not
// charge a kernel-mode switch; user-level callers model the
// cache_line_flush() syscall by pairing Flush with Syscall.
func (d *Device) Flush(start, end uint64) { d.dom.CacheLineFlush(d.base+start, d.base+end) }

// Syscall charges one kernel-mode switch.
func (d *Device) Syscall() { d.dom.Syscall() }

// Metrics returns the counter sink shared by everything on this device.
func (d *Device) Metrics() *metrics.Counters { return d.dom.Metrics() }

// MemoryBarrier issues a dmb.
func (d *Device) MemoryBarrier() { d.dom.MemoryBarrier() }

// PersistBarrier issues a persist barrier, making all flushed lines
// durable.
func (d *Device) PersistBarrier() { d.dom.PersistBarrier() }

// PowerFail crashes the device under the given survival policy.
func (d *Device) PowerFail(policy memsim.FailPolicy, seed int64) { d.dom.PowerFail(policy, seed) }

// Recover reboots the device after a PowerFail.
func (d *Device) Recover() { d.dom.Recover() }

// PutUint64 stores v little-endian at addr. Aligned 8-byte stores are
// atomic with respect to power failure.
func (d *Device) PutUint64(addr uint64, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	d.dom.Write(d.base+addr, buf[:])
}

// Uint64 loads a little-endian uint64 from addr.
func (d *Device) Uint64(addr uint64) uint64 {
	var buf [8]byte
	d.dom.Read(d.base+addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// PutUint32 stores v little-endian at addr.
func (d *Device) PutUint32(addr uint64, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	d.dom.Write(d.base+addr, buf[:])
}

// Uint32 loads a little-endian uint32 from addr.
func (d *Device) Uint32(addr uint64) uint32 {
	var buf [4]byte
	d.dom.Read(d.base+addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// FlushValue flushes the cache line(s) covering an n-byte value at addr
// (the "8 bytes padding" pattern used for the commit mark, §4.1).
func (d *Device) FlushValue(addr uint64, n int) {
	d.dom.CacheLineFlush(d.base+addr, d.base+addr+uint64(n))
}
