// Package heapo reimplements the kernel-level NVRAM heap manager NVWAL
// builds on (Heapo, Hwang et al., referenced as [16] in the paper). It
// provides:
//
//   - a persistent namespace: a root table mapping names to NVRAM
//     addresses, so SQLite can find its write-ahead log again after a
//     reboot (§3.3 requirement (ii));
//   - page-granularity block allocation with crash-consistent metadata:
//     every block carries the tri-state flag the paper's user-level heap
//     protocol relies on — free, pending, in-use (§3.3);
//   - the syscall surface NVWAL calls: NVMalloc, NVPreMalloc,
//     NVMallocSetUsedFlag, NVFree;
//   - recovery: after a crash, ReclaimPending frees every block stuck in
//     the pending state, preventing the §4.3 memory leak.
//
// Every public call charges one kernel-mode switch plus the real cost of
// persisting the metadata update (flush + barrier + persist barrier),
// which is exactly why the paper's user-level heap pays off: it trades
// one Heapo call per WAL frame for one per 8 KB block.
package heapo

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/nvram"
)

// PageSize is the allocation granule (matching the 4 KB kernel pages
// Heapo hands out).
const PageSize = 4096

// Block states stored in the persistent per-page metadata.
const (
	StateFree    = 0 // available
	StatePending = 1 // allocated but not yet referenced by the application
	StateInUse   = 2 // allocated and referenced
	stateCont    = 3 // continuation page of a multi-page block
	// StateQuarantined marks a block whose media went bad: it is never
	// allocated again, never reclaimed by recovery, and survives crash/
	// reboot cycles — the persistent bad-block list.
	StateQuarantined = 4
)

// Persistent layout:
//
//	[0,  8)   magic
//	[8, 16)   page count P
//	[16, 16+P*8)            per-page metadata: state | runPages<<8
//	[... rootTable ...]     rootSlots entries of (32-byte name, 8-byte addr)
//	[heapBase, end)         the heap pages themselves, PageSize-aligned
const (
	magic       = 0x4845_4150_4F31_0001 // "HEAPO1"+version
	rootSlots   = 64
	nameLen     = 32
	rootSlotLen = nameLen + 8
)

// Errors returned by the manager.
var (
	ErrNoSpace     = errors.New("heapo: out of NVRAM pages")
	ErrBadBlock    = errors.New("heapo: block does not reference an allocation head")
	ErrBadState    = errors.New("heapo: block is not in the expected state")
	ErrNotFormated = errors.New("heapo: device holds no heapo heap (bad magic)")
	ErrNoRootSlot  = errors.New("heapo: root table full")
	ErrNameTooLong = fmt.Errorf("heapo: name longer than %d bytes", nameLen-1)
)

// Block identifies one allocation: a contiguous run of NVRAM pages.
type Block struct {
	Addr  uint64 // device address of the first byte
	Pages int    // run length in pages
}

// Size returns the block's capacity in bytes.
func (b Block) Size() int { return b.Pages * PageSize }

// DefaultRecycleLimit caps the recycled free-block pool, in pages. 512
// pages (2 MB) holds the block set of a full default-limit checkpoint
// round, which is what steady-state recycling needs.
const DefaultRecycleLimit = 512

// Manager is the kernel heap manager instance attached to one device.
// All public methods are safe for concurrent use: a background
// checkpointer recycles blocks while the log writer allocates.
type Manager struct {
	dev       *nvram.Device
	pageCount int
	metaBase  uint64 // start of per-page metadata
	rootBase  uint64 // start of root table
	heapBase  uint64 // start of heap pages

	// mu serializes metadata scans and updates (and the volatile pool).
	mu sync.Mutex
	// freeHint is a volatile scan cursor; rebuilt state lives in NVRAM.
	freeHint int
	// freePages caches the number of StateFree pages so watermark checks
	// are O(1); the persistent metadata remains the source of truth and
	// Attach rebuilds the cache with one scan.
	freePages int
	// reservedByRun counts outstanding promised blocks by run length
	// (pages per block); see reserve.go for the admission invariant that
	// keeps every promise satisfiable.
	reservedByRun map[int]int
	// headroom is the page count of the checkpoint carve-out: ordinary
	// admission keeps a free run of at least this length available, and
	// only NVMallocHeadroom may consume it.
	headroom int
	// recycled pools pending blocks by run length so NVPreMalloc can
	// reuse a checkpoint-freed block without any kernel call: the block
	// is already in the pending state, which is exactly what
	// NVPreMalloc's contract hands out, and a crash loses nothing —
	// recovery's ReclaimPending frees pending blocks anyway.
	recycled      map[int][]Block
	recycledPages int
	recycleLimit  int
	// runScratch backs freeRunLensLocked so the admission check on every
	// reservation and unpromised allocation reuses one slice instead of
	// growing a fresh one per call.
	runScratch []int
}

// Format initializes a heapo heap on the device, erasing any previous
// content, and returns a manager attached to it.
func Format(dev *nvram.Device) (*Manager, error) {
	m := layout(dev)
	if m.pageCount < 1 {
		return nil, ErrNoSpace
	}
	dev.PutUint64(0, magic)
	dev.PutUint64(8, uint64(m.pageCount))
	zero := make([]byte, PageSize)
	// Clear per-page metadata and the root table.
	for off := m.metaBase; off < m.heapBase; off += PageSize {
		n := m.heapBase - off
		if n > PageSize {
			n = PageSize
		}
		dev.Write(off, zero[:n])
	}
	m.persistRange(0, m.heapBase)
	m.freePages = m.pageCount
	return m, nil
}

// Attach connects to a previously formatted heap, e.g. after a reboot.
func Attach(dev *nvram.Device) (*Manager, error) {
	m := layout(dev)
	if dev.Uint64(0) != magic {
		return nil, ErrNotFormated
	}
	if got := int(dev.Uint64(8)); got != m.pageCount {
		return nil, fmt.Errorf("heapo: device size changed (heap has %d pages, device fits %d)", got, m.pageCount)
	}
	for page := 0; page < m.pageCount; page++ {
		if st, _ := m.readMeta(page); st == StateFree {
			m.freePages++
		}
	}
	return m, nil
}

// layout computes the address-space split for the device size.
func layout(dev *nvram.Device) *Manager {
	m := &Manager{dev: dev, metaBase: 16, recycleLimit: DefaultRecycleLimit}
	size := uint64(dev.Size())
	// Solve for the page count: 16 + 8P + rootTable + P*PageSize <= size.
	fixed := m.metaBase + rootSlots*rootSlotLen
	p := (size - fixed) / (PageSize + 8)
	m.rootBase = m.metaBase + p*8
	heapBase := m.rootBase + rootSlots*rootSlotLen
	// Page-align the heap base.
	heapBase = (heapBase + PageSize - 1) &^ (PageSize - 1)
	for heapBase+p*PageSize > size && p > 0 {
		p--
	}
	m.pageCount = int(p)
	m.heapBase = heapBase
	return m
}

// Device returns the underlying NVRAM device.
func (m *Manager) Device() *nvram.Device { return m.dev }

// persistRange flushes and persists a metadata range, the crash-
// consistency discipline every state transition follows.
func (m *Manager) persistRange(start, end uint64) {
	m.dev.MemoryBarrier()
	m.dev.Flush(start, end)
	m.dev.MemoryBarrier()
	m.dev.PersistBarrier()
}

func (m *Manager) metaAddr(page int) uint64 { return m.metaBase + uint64(page)*8 }

func (m *Manager) pageAddr(page int) uint64 { return m.heapBase + uint64(page)*PageSize }

func (m *Manager) pageOf(addr uint64) (int, error) {
	if addr < m.heapBase || addr >= m.heapBase+uint64(m.pageCount)*PageSize {
		return 0, ErrBadBlock
	}
	off := addr - m.heapBase
	if off%PageSize != 0 {
		return 0, ErrBadBlock
	}
	return int(off / PageSize), nil
}

func (m *Manager) readMeta(page int) (state int, run int) {
	v := m.dev.Uint64(m.metaAddr(page))
	return int(v & 0xff), int(v >> 8)
}

func (m *Manager) writeMeta(page, state, run int) {
	m.dev.PutUint64(m.metaAddr(page), uint64(state)|uint64(run)<<8)
}

// KernelAllocCost is the simulated cost of Heapo's kernel-side
// allocation work beyond the mode switch: finding NVRAM pages, mapping
// them into the process address space, and persisting the heap
// metadata consistently. This is the §3.3 overhead ("allocating and
// deallocating non-volatile memory blocks using a kernel-level NVRAM
// heap manager has high overhead due to ensuring consistency in the
// presence of failures") that the user-level heap amortizes; it is
// calibrated so UH+LS gains ~6% over LS in Figure 7.
const KernelAllocCost = 20 * time.Microsecond

// allocate finds a free run of n pages, marks it with the given head
// state, persists the metadata, and returns the block. One kernel-mode
// switch plus the kernel allocation cost is charged. Called with m.mu
// held.
func (m *Manager) allocate(bytes int, headState int) (Block, error) {
	if bytes <= 0 {
		return Block{}, fmt.Errorf("heapo: invalid allocation size %d", bytes)
	}
	m.dev.Syscall()
	m.dev.Domain().Clock().Advance(KernelAllocCost)
	m.dev.Metrics().AddTime(metrics.TimeHeapAlloc, KernelAllocCost)
	need := (bytes + PageSize - 1) / PageSize
	start, ok := m.findRun(need)
	if !ok {
		return Block{}, ErrNoSpace
	}
	for i := start + 1; i < start+need; i++ {
		m.writeMeta(i, stateCont, 0)
	}
	m.writeMeta(start, headState, need)
	m.persistRange(m.metaAddr(start), m.metaAddr(start+need))
	m.freeHint = start + need
	m.freePages -= need
	m.dev.Metrics().Inc(metrics.HeapAlloc, 1)
	return Block{Addr: m.pageAddr(start), Pages: need}, nil
}

// findRun locates a free run of need pages using the volatile hint, then
// wrapping around.
func (m *Manager) findRun(need int) (int, bool) {
	scan := func(from, to int) (int, bool) {
		runStart, runLen := from, 0
		for i := from; i < to; i++ {
			st, _ := m.readMeta(i)
			if st == StateFree {
				if runLen == 0 {
					runStart = i
				}
				runLen++
				if runLen == need {
					return runStart, true
				}
			} else {
				runLen = 0
			}
		}
		return 0, false
	}
	if m.freeHint > m.pageCount {
		m.freeHint = 0
	}
	if start, ok := scan(m.freeHint, m.pageCount); ok {
		return start, true
	}
	return scan(0, m.pageCount)
}

// NVMalloc allocates a block and marks it in-use immediately — the
// legacy path the non-user-heap NVWAL variants use once per WAL frame.
// It is denied with ErrNoSpace when the allocation would eat space
// promised to an outstanding reservation or to the checkpoint headroom.
func (m *Manager) NVMalloc(bytes int) (Block, error) {
	if bytes <= 0 {
		return Block{}, fmt.Errorf("heapo: invalid allocation size %d", bytes)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.admitLocked(ceilDiv(bytes, PageSize), 0, false) {
		return Block{}, ErrNoSpace
	}
	return m.allocate(bytes, StateInUse)
}

// NVPreMalloc allocates a block in the pending state: if the system
// crashes before the application persists a reference to it and calls
// NVMallocSetUsedFlag, recovery reclaims the block (§3.3). A block of
// the exact size parked in the recycled pool is reused instead — it is
// already pending, so the reuse costs no kernel call and no metadata
// persist.
func (m *Manager) NVPreMalloc(bytes int) (Block, error) {
	if bytes <= 0 {
		return Block{}, fmt.Errorf("heapo: invalid allocation size %d", bytes)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	need := (bytes + PageSize - 1) / PageSize
	if pool := m.recycled[need]; len(pool) > 0 {
		// A pool block counts toward reserved capacity of its class, so
		// even the kernel-free reuse path needs admission.
		if !m.admitLocked(0, need, false) {
			return Block{}, ErrNoSpace
		}
		b := pool[len(pool)-1]
		m.recycled[need] = pool[:len(pool)-1]
		m.recycledPages -= need
		m.dev.Metrics().Inc(metrics.HeapRecycleHits, 1)
		return b, nil
	}
	if !m.admitLocked(need, 0, false) {
		return Block{}, ErrNoSpace
	}
	return m.allocate(bytes, StatePending)
}

// Recycle retires an in-use block the way a checkpoint frees log
// blocks: the block returns to the pending state (crash-safe — recovery
// reclaims pending blocks) and is parked in the volatile pool for the
// next NVPreMalloc of the same size, skipping the kernel allocation
// path entirely. When the pool is full the block is freed normally.
func (m *Manager) Recycle(b Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	page, err := m.pageOf(b.Addr)
	if err != nil {
		return err
	}
	st, run := m.readMeta(page)
	if st != StateInUse {
		return fmt.Errorf("%w: page %d is %s, want in-use", ErrBadState, page, stateName(st))
	}
	if m.recycledPages+run > m.recycleLimit {
		return m.freeLocked(page, run)
	}
	m.dev.Syscall()
	m.writeMeta(page, StatePending, run)
	m.persistRange(m.metaAddr(page), m.metaAddr(page+1))
	if m.recycled == nil {
		m.recycled = make(map[int][]Block)
	}
	m.recycled[run] = append(m.recycled[run], Block{Addr: b.Addr, Pages: run})
	m.recycledPages += run
	m.dev.Metrics().Inc(metrics.HeapRecycled, 1)
	return nil
}

// SetRecycleLimit bounds the recycled pool to n pages (0 disables
// recycling; Recycle then behaves like NVFree).
func (m *Manager) SetRecycleLimit(n int) {
	m.mu.Lock()
	m.recycleLimit = n
	m.mu.Unlock()
}

// RecycledPages reports the pages parked in the recycled pool.
func (m *Manager) RecycledPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recycledPages
}

// NVMallocSetUsedFlag transitions a pending block to in-use, after the
// application has persistently stored the block's address.
func (m *Manager) NVMallocSetUsedFlag(b Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dev.Syscall()
	page, err := m.pageOf(b.Addr)
	if err != nil {
		return err
	}
	st, run := m.readMeta(page)
	if st != StatePending {
		return fmt.Errorf("%w: page %d is %s, want pending", ErrBadState, page, stateName(st))
	}
	m.writeMeta(page, StateInUse, run)
	m.persistRange(m.metaAddr(page), m.metaAddr(page+1))
	return nil
}

// Quarantine retires a pending or in-use block whose media proved
// unreliable: the whole run is persistently marked quarantined, so it
// is never handed out by any allocation path again, across crashes —
// ReclaimPending skips it, findRun never matches it, and NVFree/
// Recycle refuse it.
func (m *Manager) Quarantine(b Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	page, err := m.pageOf(b.Addr)
	if err != nil {
		return err
	}
	st, run := m.readMeta(page)
	if st != StateInUse && st != StatePending {
		return fmt.Errorf("%w: page %d is %s, want in-use or pending", ErrBadState, page, stateName(st))
	}
	m.dev.Syscall()
	// Every page of the run gets the quarantined head state (run length
	// 1), so the bad-block list needs no run bookkeeping and a partially
	// damaged multi-page block can never be misparsed as an allocation.
	for i := page; i < page+run; i++ {
		m.writeMeta(i, StateQuarantined, 1)
	}
	m.persistRange(m.metaAddr(page), m.metaAddr(page+run))
	m.dev.Metrics().Inc(metrics.BlocksQuarantined, 1)
	return nil
}

// QuarantinedPages reports the number of pages on the persistent
// bad-block list.
func (m *Manager) QuarantinedPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for page := 0; page < m.pageCount; page++ {
		if st, _ := m.readMeta(page); st == StateQuarantined {
			n++
		}
	}
	return n
}

// NVFree releases a block (pending or in-use) back to the free pool.
func (m *Manager) NVFree(b Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	page, err := m.pageOf(b.Addr)
	if err != nil {
		return err
	}
	st, run := m.readMeta(page)
	if st != StateInUse && st != StatePending {
		return fmt.Errorf("%w: page %d is %s, want in-use or pending", ErrBadState, page, stateName(st))
	}
	return m.freeLocked(page, run)
}

// freeLocked clears a block's metadata run. Called with m.mu held and
// the head state validated.
func (m *Manager) freeLocked(page, run int) error {
	m.dev.Syscall()
	for i := page; i < page+run; i++ {
		m.writeMeta(i, StateFree, 0)
	}
	m.persistRange(m.metaAddr(page), m.metaAddr(page+run))
	if page < m.freeHint {
		m.freeHint = page
	}
	m.freePages += run
	m.dev.Metrics().Inc(metrics.HeapFree, 1)
	return nil
}

// BlockAt reconstructs a Block from a persisted address, validating that
// it references an allocation head. Used by recovery code that walks a
// linked list of block addresses out of NVRAM.
func (m *Manager) BlockAt(addr uint64) (Block, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	page, err := m.pageOf(addr)
	if err != nil {
		return Block{}, err
	}
	st, run := m.readMeta(page)
	if st != StateInUse && st != StatePending {
		return Block{}, fmt.Errorf("%w: page %d is %s", ErrBadState, page, stateName(st))
	}
	return Block{Addr: addr, Pages: run}, nil
}

// StateOf reports the tri-state flag of the block at addr.
func (m *Manager) StateOf(addr uint64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	page, err := m.pageOf(addr)
	if err != nil {
		return 0, err
	}
	st, _ := m.readMeta(page)
	return st, nil
}

// ReclaimPending frees every block left in the pending state, the heap
// manager's half of crash recovery (§4.3: "the heap manager can reclaim
// any pending NVRAM blocks to prevent a memory leak"). It returns the
// number of blocks reclaimed.
func (m *Manager) ReclaimPending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Pool entries are pending blocks; reclaiming frees them, so the
	// volatile pool must not hand them out afterwards.
	m.recycled = nil
	m.recycledPages = 0
	m.dev.Syscall()
	reclaimed := 0
	for page := 0; page < m.pageCount; {
		st, run := m.readMeta(page)
		if run < 1 {
			run = 1
		}
		if st == StatePending {
			for i := page; i < page+run; i++ {
				m.writeMeta(i, StateFree, 0)
			}
			m.persistRange(m.metaAddr(page), m.metaAddr(page+run))
			m.freePages += run
			reclaimed++
		}
		page += run
	}
	m.freeHint = 0
	return reclaimed
}

// FreePages reports the number of free heap pages.
func (m *Manager) FreePages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.freePages
}

// TotalPages reports the heap capacity in pages.
func (m *Manager) TotalPages() int { return m.pageCount }

// HeapRange returns the device address interval [start, end) holding
// the heap's data pages — the region a fault-injection harness targets
// to damage log content while sparing allocator metadata.
func (m *Manager) HeapRange() (start, end uint64) {
	return m.heapBase, m.heapBase + uint64(m.pageCount)*PageSize
}

// SetRoot persistently binds name to an NVRAM address in the namespace
// table, so the object can be found after reboot. An existing binding is
// overwritten.
func (m *Manager) SetRoot(name string, addr uint64) error {
	if len(name) >= nameLen {
		return ErrNameTooLong
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dev.Syscall()
	slot, existing := m.findRoot(name)
	if !existing {
		if slot < 0 {
			return ErrNoRootSlot
		}
		var buf [nameLen]byte
		copy(buf[:], name)
		m.dev.Write(m.rootSlotAddr(slot), buf[:])
	}
	m.dev.PutUint64(m.rootSlotAddr(slot)+nameLen, addr)
	m.persistRange(m.rootSlotAddr(slot), m.rootSlotAddr(slot)+rootSlotLen)
	return nil
}

// GetRoot looks up a namespace binding. ok is false if the name is not
// bound.
func (m *Manager) GetRoot(name string) (addr uint64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	slot, existing := m.findRoot(name)
	if !existing {
		return 0, false
	}
	return m.dev.Uint64(m.rootSlotAddr(slot) + nameLen), true
}

// DeleteRoot removes a namespace binding if present.
func (m *Manager) DeleteRoot(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	slot, existing := m.findRoot(name)
	if !existing {
		return
	}
	m.dev.Syscall()
	zero := make([]byte, rootSlotLen)
	m.dev.Write(m.rootSlotAddr(slot), zero)
	m.persistRange(m.rootSlotAddr(slot), m.rootSlotAddr(slot)+rootSlotLen)
}

func (m *Manager) rootSlotAddr(slot int) uint64 {
	return m.rootBase + uint64(slot)*rootSlotLen
}

// findRoot returns (slot, true) if name is bound, or (firstFreeSlot,
// false) otherwise; firstFreeSlot is -1 when the table is full.
func (m *Manager) findRoot(name string) (int, bool) {
	firstFree := -1
	var buf [nameLen]byte
	for slot := 0; slot < rootSlots; slot++ {
		m.dev.Read(m.rootSlotAddr(slot), buf[:])
		stored := string(buf[:])
		if i := strings.IndexByte(stored, 0); i >= 0 {
			stored = stored[:i]
		}
		if stored == name && name != "" {
			return slot, true
		}
		if stored == "" && firstFree < 0 {
			firstFree = slot
		}
	}
	return firstFree, false
}

func stateName(st int) string {
	switch st {
	case StateFree:
		return "free"
	case StatePending:
		return "pending"
	case StateInUse:
		return "in-use"
	case stateCont:
		return "continuation"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", st)
	}
}
