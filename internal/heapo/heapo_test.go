package heapo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/simclock"
)

func newHeap(t testing.TB, size int) (*Manager, *nvram.Device, *metrics.Counters) {
	t.Helper()
	clock := simclock.New()
	m := &metrics.Counters{}
	dev := nvram.NewDevice(nvram.Config{Size: size}, clock, m)
	h, err := Format(dev)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return h, dev, m
}

func TestFormatAndAttach(t *testing.T) {
	h, dev, _ := newHeap(t, 1<<20)
	if h.TotalPages() < 100 {
		t.Fatalf("TotalPages = %d, want >= 100 for a 1 MiB device", h.TotalPages())
	}
	h2, err := Attach(dev)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if h2.TotalPages() != h.TotalPages() {
		t.Fatalf("Attach sees %d pages, Format created %d", h2.TotalPages(), h.TotalPages())
	}
}

func TestAttachUnformattedFails(t *testing.T) {
	clock := simclock.New()
	dev := nvram.NewDevice(nvram.Config{Size: 1 << 20}, clock, &metrics.Counters{})
	if _, err := Attach(dev); err == nil {
		t.Fatal("Attach on unformatted device succeeded")
	}
}

func TestNVMallocMarksInUse(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, err := h.NVMalloc(100)
	if err != nil {
		t.Fatalf("NVMalloc: %v", err)
	}
	if b.Pages != 1 {
		t.Fatalf("100-byte alloc got %d pages, want 1", b.Pages)
	}
	st, err := h.StateOf(b.Addr)
	if err != nil {
		t.Fatalf("StateOf: %v", err)
	}
	if st != StateInUse {
		t.Fatalf("state = %d, want in-use", st)
	}
}

func TestNVPreMallocProtocol(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, err := h.NVPreMalloc(8192)
	if err != nil {
		t.Fatalf("NVPreMalloc: %v", err)
	}
	if b.Pages != 2 {
		t.Fatalf("8 KB alloc got %d pages, want 2", b.Pages)
	}
	if st, _ := h.StateOf(b.Addr); st != StatePending {
		t.Fatalf("state after pre-malloc = %d, want pending", st)
	}
	if err := h.NVMallocSetUsedFlag(b); err != nil {
		t.Fatalf("NVMallocSetUsedFlag: %v", err)
	}
	if st, _ := h.StateOf(b.Addr); st != StateInUse {
		t.Fatalf("state after set-used = %d, want in-use", st)
	}
}

func TestSetUsedFlagRejectsNonPending(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, _ := h.NVMalloc(100)
	if err := h.NVMallocSetUsedFlag(b); err == nil {
		t.Fatal("set-used on an in-use block succeeded")
	}
}

func TestNVFreeRecyclesPages(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	free0 := h.FreePages()
	b, _ := h.NVMalloc(3 * PageSize)
	if got := h.FreePages(); got != free0-3 {
		t.Fatalf("FreePages after alloc = %d, want %d", got, free0-3)
	}
	if err := h.NVFree(b); err != nil {
		t.Fatalf("NVFree: %v", err)
	}
	if got := h.FreePages(); got != free0 {
		t.Fatalf("FreePages after free = %d, want %d", got, free0)
	}
}

func TestNVFreeRejectsBadAddr(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	if err := h.NVFree(Block{Addr: 12345, Pages: 1}); err == nil {
		t.Fatal("NVFree of unaligned non-heap address succeeded")
	}
	b, _ := h.NVMalloc(2 * PageSize)
	// Freeing a continuation page is not a valid allocation head.
	if err := h.NVFree(Block{Addr: b.Addr + PageSize, Pages: 1}); err == nil {
		t.Fatal("NVFree of continuation page succeeded")
	}
}

func TestDoubleFreeFails(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, _ := h.NVMalloc(PageSize)
	if err := h.NVFree(b); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := h.NVFree(b); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestOutOfSpace(t *testing.T) {
	h, _, _ := newHeap(t, 64*1024)
	var blocks []Block
	for {
		b, err := h.NVMalloc(PageSize)
		if err != nil {
			break
		}
		blocks = append(blocks, b)
	}
	if len(blocks) == 0 || len(blocks) > 16 {
		t.Fatalf("allocated %d pages from a 64 KiB device", len(blocks))
	}
	if _, err := h.NVMalloc(PageSize); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
	// Free one and retry.
	if err := h.NVFree(blocks[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NVMalloc(PageSize); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestAllocationsSurviveCrash(t *testing.T) {
	h, dev, _ := newHeap(t, 1<<20)
	b, _ := h.NVMalloc(8192)
	dev.PowerFail(memsim.FailDropAll, 1)
	dev.Recover()
	h2, err := Attach(dev)
	if err != nil {
		t.Fatalf("Attach after crash: %v", err)
	}
	if st, err := h2.StateOf(b.Addr); err != nil || st != StateInUse {
		t.Fatalf("in-use block lost across crash: state=%d err=%v", st, err)
	}
}

func TestReclaimPendingAfterCrash(t *testing.T) {
	h, dev, _ := newHeap(t, 1<<20)
	inUse, _ := h.NVMalloc(PageSize)
	pending, _ := h.NVPreMalloc(2 * PageSize)
	dev.PowerFail(memsim.FailDropAll, 1)
	dev.Recover()
	h2, err := Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	n := h2.ReclaimPending()
	if n != 1 {
		t.Fatalf("reclaimed %d pending blocks, want 1", n)
	}
	if st, _ := h2.StateOf(pending.Addr); st != StateFree {
		t.Fatalf("pending block state after reclaim = %d, want free", st)
	}
	if st, _ := h2.StateOf(inUse.Addr); st != StateInUse {
		t.Fatalf("in-use block state after reclaim = %d, want in-use", st)
	}
}

func TestRootNamespace(t *testing.T) {
	h, dev, _ := newHeap(t, 1<<20)
	b, _ := h.NVMalloc(PageSize)
	if err := h.SetRoot("db-wal:test.db", b.Addr); err != nil {
		t.Fatalf("SetRoot: %v", err)
	}
	addr, ok := h.GetRoot("db-wal:test.db")
	if !ok || addr != b.Addr {
		t.Fatalf("GetRoot = (%d,%v), want (%d,true)", addr, ok, b.Addr)
	}
	// Survives a crash.
	dev.PowerFail(memsim.FailDropAll, 1)
	dev.Recover()
	h2, _ := Attach(dev)
	addr, ok = h2.GetRoot("db-wal:test.db")
	if !ok || addr != b.Addr {
		t.Fatalf("GetRoot after crash = (%d,%v), want (%d,true)", addr, ok, b.Addr)
	}
	// Rebind overwrites.
	if err := h2.SetRoot("db-wal:test.db", 999*4096); err != nil {
		t.Fatal(err)
	}
	if addr, _ = h2.GetRoot("db-wal:test.db"); addr != 999*4096 {
		t.Fatalf("rebound root = %d", addr)
	}
	h2.DeleteRoot("db-wal:test.db")
	if _, ok = h2.GetRoot("db-wal:test.db"); ok {
		t.Fatal("deleted root still resolves")
	}
}

func TestRootNameTooLong(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'x'
	}
	if err := h.SetRoot(string(long), 0); err == nil {
		t.Fatal("overlong root name accepted")
	}
}

func TestBlockAtValidatesHeads(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, _ := h.NVMalloc(3 * PageSize)
	got, err := h.BlockAt(b.Addr)
	if err != nil || got.Pages != 3 {
		t.Fatalf("BlockAt = (%+v, %v), want 3-page block", got, err)
	}
	if _, err := h.BlockAt(b.Addr + PageSize); err == nil {
		t.Fatal("BlockAt accepted a continuation page")
	}
}

func TestSyscallAccounting(t *testing.T) {
	h, _, m := newHeap(t, 1<<20)
	before := m.Count(metrics.Syscall)
	b, _ := h.NVPreMalloc(PageSize)
	_ = h.NVMallocSetUsedFlag(b)
	_ = h.NVFree(b)
	if got := m.Count(metrics.Syscall) - before; got != 3 {
		t.Fatalf("3 heap calls charged %d syscalls, want 3", got)
	}
}

// Property: any interleaving of allocations and frees never yields
// overlapping live blocks.
func TestPropertyNoOverlappingAllocations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, _, _ := newHeap(t, 1<<20)
		type live struct{ b Block }
		var blocks []live
		for op := 0; op < 120; op++ {
			if rng.Intn(3) != 0 || len(blocks) == 0 {
				size := (1 + rng.Intn(4)) * PageSize
				b, err := h.NVMalloc(size)
				if err != nil {
					continue
				}
				blocks = append(blocks, live{b})
			} else {
				i := rng.Intn(len(blocks))
				if err := h.NVFree(blocks[i].b); err != nil {
					return false
				}
				blocks = append(blocks[:i], blocks[i+1:]...)
			}
		}
		for i := range blocks {
			for j := i + 1; j < len(blocks); j++ {
				a, b := blocks[i].b, blocks[j].b
				aEnd := a.Addr + uint64(a.Size())
				bEnd := b.Addr + uint64(b.Size())
				if a.Addr < bEnd && b.Addr < aEnd {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRecyclePoolHitSkipsKernelPath(t *testing.T) {
	h, _, m := newHeap(t, 1<<20)
	b, err := h.NVMalloc(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	free0 := h.FreePages()
	if err := h.Recycle(b); err != nil {
		t.Fatalf("Recycle: %v", err)
	}
	if h.FreePages() != free0 {
		t.Fatal("Recycle returned pages to the general free pool, want parked")
	}
	if h.RecycledPages() != 2 {
		t.Fatalf("RecycledPages = %d, want 2", h.RecycledPages())
	}
	// The block is pending now: a crash before reuse reclaims it.
	if st, _ := h.StateOf(b.Addr); st != StatePending {
		t.Fatalf("recycled block state = %d, want pending", st)
	}
	sys0 := m.Count(metrics.Syscall)
	hits0 := m.Count(metrics.HeapRecycleHits)
	b2, err := h.NVPreMalloc(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Addr != b.Addr {
		t.Fatalf("pool hit returned %#x, want recycled block %#x", b2.Addr, b.Addr)
	}
	if got := m.Count(metrics.Syscall); got != sys0 {
		t.Fatalf("pool hit cost %d syscalls, want 0", got-sys0)
	}
	if m.Count(metrics.HeapRecycleHits) != hits0+1 {
		t.Fatal("pool hit not counted")
	}
	if h.RecycledPages() != 0 {
		t.Fatal("pool not drained by the hit")
	}
	// A different-size request misses the pool and allocates fresh.
	b3, err := h.NVPreMalloc(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if b3.Addr == b.Addr {
		t.Fatal("different-size request reused a 2-page block")
	}
}

func TestRecycleOverflowFreesNormally(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	h.SetRecycleLimit(2)
	free0 := h.FreePages()
	a, _ := h.NVMalloc(2 * PageSize)
	b, _ := h.NVMalloc(2 * PageSize)
	if err := h.Recycle(a); err != nil {
		t.Fatal(err)
	}
	// The second recycle would exceed the 2-page cap: it frees instead.
	if err := h.Recycle(b); err != nil {
		t.Fatal(err)
	}
	if h.RecycledPages() != 2 {
		t.Fatalf("RecycledPages = %d, want 2 (cap)", h.RecycledPages())
	}
	if got := h.FreePages(); got != free0-2 {
		t.Fatalf("FreePages = %d, want %d (overflow block freed)", got, free0-2)
	}
	if st, _ := h.StateOf(b.Addr); st != StateFree {
		t.Fatal("overflow block not freed")
	}
}

func TestRecycleRejectsNonInUse(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, _ := h.NVPreMalloc(PageSize)
	if err := h.Recycle(b); err == nil {
		t.Fatal("Recycle of a pending block succeeded")
	}
}

func TestReclaimPendingClearsRecyclePool(t *testing.T) {
	h, dev, _ := newHeap(t, 1<<20)
	b, _ := h.NVMalloc(2 * PageSize)
	if err := h.Recycle(b); err != nil {
		t.Fatal(err)
	}
	// Crash: the pool is volatile, but the parked block's pending state
	// is persistent — Attach + ReclaimPending recovers it as free.
	dev.PowerFail(memsim.FailDropAll, 1)
	dev.Recover()
	h2, err := Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	free0 := h2.FreePages()
	if n := h2.ReclaimPending(); n != 1 {
		t.Fatalf("reclaimed %d blocks, want 1", n)
	}
	if h2.FreePages() != free0+2 {
		t.Fatal("recycled block's pages not recovered after crash")
	}
	if h2.RecycledPages() != 0 {
		t.Fatal("fresh attach reports a non-empty recycle pool")
	}
}
