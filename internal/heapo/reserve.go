// Reservation and headroom admission for the heap manager.
//
// NVWAL's commit protocol must never see ErrNoSpace in the middle of an
// append: a partially linked block chain is expensive to unwind and,
// worse, the checkpoint — the only mechanism that frees log space —
// itself needs a block when a fresh log is created on this heap. The
// admission layer here turns "out of space" from a mid-operation
// surprise into an up-front answer:
//
//   - Reserve(blocks, maxBytes) promises that `blocks` future
//     allocations of up to maxBytes each will succeed. The promise is
//     honored by denying any other allocation that would eat the
//     promised capacity.
//   - EnsureHeadroom(pages) carves out a persistent-checkpoint
//     headroom: ordinary admission keeps a free run of at least that
//     length intact, and only NVMallocHeadroom may consume it.
//
// Because blocks are contiguous page runs, counting free *pages* is not
// enough — a fragmented heap can hold plenty of free pages and still
// have no run long enough for one block. Admission therefore counts
// free capacity per run-length class:
//
//	avail(L) = Σ over free runs r of ⌊len(r)/L⌋ + len(recycled pool[L])
//
// and maintains the invariant, for every class L with outstanding
// promises (including the headroom pseudo-class):
//
//	avail(L) ≥ Σ over classes L' of promised(L') × ⌈L'/L⌉
//
// The right-hand side over-counts deliberately: carving n pages out of
// any free run destroys at most ⌈n/L⌉ blocks of class L, so debiting a
// promise of class L' costs every other class at most ⌈L'/L⌉ blocks.
// With the invariant checked at Reserve time and at every unpromised
// allocation (with that allocation's own damage subtracted), a promised
// debit can never fail: each debit removes at most as much capacity
// from each class as it removes promises, so the invariant is
// self-preserving. Frees, recycles and quarantines only ever add free
// capacity or leave it unchanged.
package heapo

import (
	"errors"
	"fmt"

	"repro/internal/metrics"
)

// ErrReservationSpent is returned when a reservation is debited more
// times than the block count it promised.
var ErrReservationSpent = errors.New("heapo: reservation already fully spent")

// Reservation is a promise of future allocations: up to `remaining`
// blocks of at most `run` pages each are guaranteed to succeed. A
// Reservation is not safe for concurrent use by multiple goroutines
// (the heap it draws from is).
type Reservation struct {
	m         *Manager
	run       int // pages per promised block (worst case)
	remaining int // promised blocks not yet debited
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Reserve promises that `blocks` future allocations of up to maxBytes
// each will succeed, or fails up front with ErrNoSpace if the heap
// cannot guarantee that without breaking earlier promises or the
// checkpoint headroom. The caller must Release the reservation when
// done; debiting it past `blocks` fails with ErrReservationSpent.
func (m *Manager) Reserve(blocks, maxBytes int) (*Reservation, error) {
	r := new(Reservation)
	if err := m.ReserveInto(r, blocks, maxBytes); err != nil {
		return nil, err
	}
	return r, nil
}

// ReserveInto is Reserve writing the promise into a caller-owned
// Reservation, so a commit loop can reuse one Reservation value across
// transactions instead of allocating a fresh one per Reserve. r must be
// fresh or fully released/spent; on failure r is left released.
func (m *Manager) ReserveInto(r *Reservation, blocks, maxBytes int) error {
	if blocks <= 0 || maxBytes <= 0 {
		return fmt.Errorf("heapo: invalid reservation (%d blocks of %d bytes)", blocks, maxBytes)
	}
	if r.remaining > 0 {
		return fmt.Errorf("heapo: reservation still holds %d promised blocks", r.remaining)
	}
	run := ceilDiv(maxBytes, PageSize)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.reservedByRun == nil {
		m.reservedByRun = make(map[int]int)
	}
	// Add the promise hypothetically, then verify the invariant holds.
	m.reservedByRun[run] += blocks
	if !m.admitLocked(0, 0, false) {
		m.unreserveLocked(run, blocks)
		m.dev.Metrics().Inc(metrics.HeapReserveDenied, 1)
		*r = Reservation{m: m}
		return ErrNoSpace
	}
	m.dev.Metrics().Inc(metrics.HeapReservations, 1)
	*r = Reservation{m: m, run: run, remaining: blocks}
	return nil
}

// PreMalloc debits one promised block in the pending state (the
// NVPreMalloc contract), preferring the recycled pool. bytes may be
// smaller than the reserved worst case, never larger.
func (r *Reservation) PreMalloc(bytes int) (Block, error) {
	return r.alloc(bytes, StatePending)
}

// Malloc debits one promised block directly in the in-use state (the
// NVMalloc contract).
func (r *Reservation) Malloc(bytes int) (Block, error) {
	return r.alloc(bytes, StateInUse)
}

func (r *Reservation) alloc(bytes, headState int) (Block, error) {
	if bytes <= 0 {
		return Block{}, fmt.Errorf("heapo: invalid allocation size %d", bytes)
	}
	need := ceilDiv(bytes, PageSize)
	m := r.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.remaining <= 0 {
		return Block{}, ErrReservationSpent
	}
	if need > r.run {
		return Block{}, fmt.Errorf("heapo: reservation promises %d-page blocks, need %d", r.run, need)
	}
	if headState == StatePending {
		if pool := m.recycled[need]; len(pool) > 0 {
			b := pool[len(pool)-1]
			m.recycled[need] = pool[:len(pool)-1]
			m.recycledPages -= need
			m.dev.Metrics().Inc(metrics.HeapRecycleHits, 1)
			r.debitLocked()
			return b, nil
		}
	}
	b, err := m.allocate(bytes, headState)
	if err != nil {
		// The admission invariant makes this unreachable; surface it
		// loudly rather than masking an accounting bug.
		return Block{}, fmt.Errorf("heapo: reserved allocation failed: %w", err)
	}
	r.debitLocked()
	return b, nil
}

// debitLocked consumes one promise. Called with m.mu held.
func (r *Reservation) debitLocked() {
	r.remaining--
	r.m.unreserveLocked(r.run, 1)
}

// Remaining reports the promised blocks not yet debited.
func (r *Reservation) Remaining() int {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	return r.remaining
}

// Release returns any undebited promises to the heap. Safe to call
// more than once; a fully debited reservation releases nothing.
func (r *Reservation) Release() {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	if r.remaining > 0 {
		r.m.unreserveLocked(r.run, r.remaining)
		r.remaining = 0
	}
}

// unreserveLocked removes n promised blocks of the given class.
func (m *Manager) unreserveLocked(run, n int) {
	if m.reservedByRun[run] -= n; m.reservedByRun[run] <= 0 {
		delete(m.reservedByRun, run)
	}
}

// ReservedPages reports the pages currently promised to outstanding
// reservations (worst case: blocks × run length).
func (m *Manager) ReservedPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for run, blocks := range m.reservedByRun {
		n += run * blocks
	}
	return n
}

// EnsureHeadroom raises the checkpoint headroom to at least `pages`
// pages: ordinary admission keeps a free run of that length intact so
// NVMallocHeadroom can always serve the allocations checkpointing
// depends on. The headroom never shrinks — several logs sharing one
// heap each raise it to their own requirement.
func (m *Manager) EnsureHeadroom(pages int) {
	m.mu.Lock()
	if pages > m.headroom {
		m.headroom = pages
	}
	m.mu.Unlock()
}

// Headroom reports the current checkpoint headroom in pages.
func (m *Manager) Headroom() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.headroom
}

// NVMallocHeadroom allocates an in-use block that may consume the
// checkpoint headroom. It still refuses to eat space promised to
// outstanding reservations, but as long as the request fits the
// headroom that can never happen: the ordinary admission rule kept a
// run of headroom length out of every promise.
func (m *Manager) NVMallocHeadroom(bytes int) (Block, error) {
	if bytes <= 0 {
		return Block{}, fmt.Errorf("heapo: invalid allocation size %d", bytes)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.admitLocked(ceilDiv(bytes, PageSize), 0, true) {
		return Block{}, ErrNoSpace
	}
	return m.allocate(bytes, StateInUse)
}

// admitLocked decides whether an allocation (or a new promise) keeps
// every outstanding promise satisfiable. carvePages is the run length
// about to be carved from free space (0 for none); poolClass is the
// class of a recycled-pool block about to be consumed (0 for none);
// headroomPrivileged drops the headroom pseudo-class from the check
// for allocations allowed to consume it. Called with m.mu held.
func (m *Manager) admitLocked(carvePages, poolClass int, headroomPrivileged bool) bool {
	if len(m.reservedByRun) == 0 && (m.headroom == 0 || headroomPrivileged) {
		return true
	}
	runs := m.freeRunLensLocked()
	check := func(class int) bool {
		avail := len(m.recycled[class])
		for _, rl := range runs {
			avail += rl / class
		}
		if carvePages > 0 {
			avail -= ceilDiv(carvePages, class)
		}
		if poolClass == class {
			avail--
		}
		need := 0
		for run, blocks := range m.reservedByRun {
			need += blocks * ceilDiv(run, class)
		}
		if !headroomPrivileged && m.headroom > 0 {
			need += ceilDiv(m.headroom, class)
		}
		return avail >= need
	}
	for class := range m.reservedByRun {
		if !check(class) {
			return false
		}
	}
	if !headroomPrivileged && m.headroom > 0 && !check(m.headroom) {
		return false
	}
	return true
}

// freeRunLensLocked scans the page metadata and returns the length of
// every maximal free run, in a scratch slice valid until the next call
// (m.mu serializes callers). Reads cost no simulated time, so the scan
// only spends host CPU.
func (m *Manager) freeRunLensLocked() []int {
	runs := m.runScratch[:0]
	cur := 0
	for page := 0; page < m.pageCount; page++ {
		if st, _ := m.readMeta(page); st == StateFree {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if cur > 0 {
		runs = append(runs, cur)
	}
	m.runScratch = runs
	return runs
}

// SizeForPages returns the smallest device size (in bytes) for which a
// formatted heap holds exactly `pages` heap pages — how tests and the
// fuzzer build deliberately tiny heaps.
func SizeForPages(pages int) int {
	base := uint64(16 + rootSlots*rootSlotLen + pages*8)
	base = (base + PageSize - 1) &^ uint64(PageSize-1)
	return int(base) + pages*PageSize
}
