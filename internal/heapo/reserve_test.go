package heapo

import (
	"errors"
	"math/rand"
	"testing"
)

func TestSizeForPagesRoundTrip(t *testing.T) {
	for _, pages := range []int{1, 2, 7, 16, 40, 100, 513, 4096} {
		h, _, _ := newHeap(t, SizeForPages(pages))
		if got := h.TotalPages(); got != pages {
			t.Fatalf("SizeForPages(%d): formatted heap has %d pages", pages, got)
		}
		if got := h.FreePages(); got != pages {
			t.Fatalf("SizeForPages(%d): fresh heap reports %d free pages", pages, got)
		}
	}
}

func TestReserveDebitRelease(t *testing.T) {
	h, _, _ := newHeap(t, SizeForPages(32))
	res, err := h.Reserve(4, 2*PageSize)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := h.ReservedPages(); got != 8 {
		t.Fatalf("ReservedPages = %d, want 8", got)
	}
	var blocks []Block
	for i := 0; i < 4; i++ {
		b, err := res.PreMalloc(2 * PageSize)
		if err != nil {
			t.Fatalf("PreMalloc %d: %v", i, err)
		}
		blocks = append(blocks, b)
	}
	if _, err := res.PreMalloc(PageSize); !errors.Is(err, ErrReservationSpent) {
		t.Fatalf("over-debit error = %v, want ErrReservationSpent", err)
	}
	if got := h.ReservedPages(); got != 0 {
		t.Fatalf("ReservedPages after full debit = %d, want 0", got)
	}
	res.Release() // must be a no-op on a spent reservation
	for _, b := range blocks {
		if err := h.NVFree(b); err != nil {
			t.Fatalf("NVFree: %v", err)
		}
	}
}

func TestReleaseReturnsPromises(t *testing.T) {
	h, _, _ := newHeap(t, SizeForPages(8))
	res, err := h.Reserve(4, 2*PageSize)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	// The whole heap is promised: nothing else may allocate.
	if _, err := h.NVMalloc(PageSize); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("NVMalloc under full reservation = %v, want ErrNoSpace", err)
	}
	if _, err := h.Reserve(1, PageSize); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("second Reserve = %v, want ErrNoSpace", err)
	}
	res.Release()
	if _, err := h.NVMalloc(PageSize); err != nil {
		t.Fatalf("NVMalloc after Release: %v", err)
	}
}

func TestReserveRespectsContiguity(t *testing.T) {
	// 8 free pages in 4 separate 2-page islands: 8 single pages or 4
	// two-page blocks fit, but a 3-page block does not — and Reserve
	// must know that.
	h, _, _ := newHeap(t, SizeForPages(16))
	var all []Block
	for i := 0; i < 8; i++ {
		b, err := h.NVMalloc(2 * PageSize)
		if err != nil {
			t.Fatalf("NVMalloc %d: %v", i, err)
		}
		all = append(all, b)
	}
	var pins []Block
	for i, b := range all {
		if i%2 == 0 {
			if err := h.NVFree(b); err != nil {
				t.Fatalf("NVFree: %v", err)
			}
		} else {
			pins = append(pins, b)
		}
	}
	// The map is now [free free used used]×4.
	if got := h.FreePages(); got != 8 {
		t.Fatalf("FreePages = %d, want 8", got)
	}
	if _, err := h.Reserve(1, 3*PageSize); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Reserve of a 3-page block on 2-page islands = %v, want ErrNoSpace", err)
	}
	res, err := h.Reserve(4, 2*PageSize)
	if err != nil {
		t.Fatalf("Reserve of four 2-page blocks: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := res.Malloc(2 * PageSize); err != nil {
			t.Fatalf("promised Malloc %d: %v", i, err)
		}
	}
	for _, b := range pins {
		_ = h.NVFree(b)
	}
}

func TestHeadroomSurvivesFullReservation(t *testing.T) {
	h, _, _ := newHeap(t, SizeForPages(16))
	h.EnsureHeadroom(2)
	if got := h.Headroom(); got != 2 {
		t.Fatalf("Headroom = %d, want 2", got)
	}
	h.EnsureHeadroom(1) // never shrinks
	if got := h.Headroom(); got != 2 {
		t.Fatalf("Headroom shrank to %d", got)
	}
	// Reserve everything admission will give us.
	blocks := 0
	var last *Reservation
	for {
		res, err := h.Reserve(1, 2*PageSize)
		if err != nil {
			break
		}
		last = res
		blocks++
	}
	if blocks == 0 || blocks > 7 {
		t.Fatalf("reserved %d two-page blocks of 16 pages with 2 headroom", blocks)
	}
	// Ordinary allocation is denied, headroom-privileged succeeds.
	if _, err := h.NVMalloc(PageSize); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("NVMalloc = %v, want ErrNoSpace", err)
	}
	hb, err := h.NVMallocHeadroom(2 * PageSize)
	if err != nil {
		t.Fatalf("NVMallocHeadroom under full reservation: %v", err)
	}
	if hb.Pages != 2 {
		t.Fatalf("headroom block has %d pages, want 2", hb.Pages)
	}
	_ = last
}

// TestFragmentationModel is the findRun fragmentation coverage: seeded
// interleavings of NVMalloc / NVPreMalloc / Recycle / Quarantine /
// NVFree against a shadow model of the page map, asserting FreePages
// accounting stays exact and that a successful Reserve is always
// backed by runs findRun can actually satisfy contiguously.
func TestFragmentationModel(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const pages = 64
			h, _, _ := newHeap(t, SizeForPages(pages))
			free := pages      // shadow free-page count
			quarantined := 0   // shadow quarantine count
			var live []Block   // in-use blocks
			var parked []Block // pending blocks from NVPreMalloc

			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 3: // NVMalloc of 1..4 pages
					n := 1 + rng.Intn(4)
					b, err := h.NVMalloc(n * PageSize)
					if err == nil {
						live = append(live, b)
						free -= b.Pages
					} else if !errors.Is(err, ErrNoSpace) {
						t.Fatalf("step %d: NVMalloc: %v", step, err)
					}
				case op < 5: // NVPreMalloc (maybe a pool hit)
					n := 1 + rng.Intn(3)
					before := h.RecycledPages()
					b, err := h.NVPreMalloc(n * PageSize)
					if err == nil {
						parked = append(parked, b)
						if h.RecycledPages() == before {
							free -= b.Pages // fresh carve, not a pool hit
						}
					} else if !errors.Is(err, ErrNoSpace) {
						t.Fatalf("step %d: NVPreMalloc: %v", step, err)
					}
				case op < 6 && len(parked) > 0: // commit a pending block
					i := rng.Intn(len(parked))
					b := parked[i]
					parked = append(parked[:i], parked[i+1:]...)
					if err := h.NVMallocSetUsedFlag(b); err != nil {
						t.Fatalf("step %d: SetUsedFlag: %v", step, err)
					}
					live = append(live, b)
				case op < 8 && len(live) > 0: // Recycle (pool park or free)
					i := rng.Intn(len(live))
					b := live[i]
					live = append(live[:i], live[i+1:]...)
					before := h.RecycledPages()
					if err := h.Recycle(b); err != nil {
						t.Fatalf("step %d: Recycle: %v", step, err)
					}
					if h.RecycledPages() == before {
						free += b.Pages // past the pool limit: freed outright
					}
				case op < 9 && len(live) > 0: // NVFree
					i := rng.Intn(len(live))
					b := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := h.NVFree(b); err != nil {
						t.Fatalf("step %d: NVFree: %v", step, err)
					}
					free += b.Pages
				case len(live) > 0: // Quarantine
					i := rng.Intn(len(live))
					b := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := h.Quarantine(b); err != nil {
						t.Fatalf("step %d: Quarantine: %v", step, err)
					}
					quarantined += b.Pages
				}

				if got := h.FreePages(); got != free {
					t.Fatalf("step %d: FreePages = %d, model says %d", step, got, free)
				}
				if got := h.QuarantinedPages(); got != quarantined {
					t.Fatalf("step %d: QuarantinedPages = %d, model says %d", step, got, quarantined)
				}

				// Every fifth step, probe that Reserve never over-promises:
				// whatever it grants must be fully debitable right now.
				if step%5 == 4 {
					n := 1 + rng.Intn(3)
					want := 1 + rng.Intn(3)
					res, err := h.Reserve(want, n*PageSize)
					if errors.Is(err, ErrNoSpace) {
						continue
					}
					if err != nil {
						t.Fatalf("step %d: Reserve: %v", step, err)
					}
					for i := 0; i < want; i++ {
						b, err := res.PreMalloc(n * PageSize)
						if err != nil {
							t.Fatalf("step %d: promised block %d/%d of %d pages failed: %v",
								step, i+1, want, n, err)
						}
						parked = append(parked, b)
						if h.FreePages() < free-(i+1)*n {
							t.Fatalf("step %d: debit consumed more than its run", step)
						}
					}
					free = h.FreePages() // resync (pool hits consume no free pages)
					res.Release()
				}
			}
		})
	}
}

// TestReservationSurvivesChurn races promised debits against unreserved
// allocation churn: admission must deny the churn before it can ever
// make a promised block fail.
func TestReservationSurvivesChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, _, _ := newHeap(t, SizeForPages(48))
	res, err := h.Reserve(8, 2*PageSize)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	var churn []Block
	debited := 0
	for step := 0; step < 200 && debited < 8; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			if b, err := h.NVMalloc((1 + rng.Intn(5)) * PageSize); err == nil {
				churn = append(churn, b)
			} else if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("churn NVMalloc: %v", err)
			}
		case 2:
			if len(churn) > 0 {
				i := rng.Intn(len(churn))
				if err := h.NVFree(churn[i]); err != nil {
					t.Fatalf("churn NVFree: %v", err)
				}
				churn = append(churn[:i], churn[i+1:]...)
			}
		case 3:
			if _, err := res.PreMalloc(2 * PageSize); err != nil {
				t.Fatalf("promised PreMalloc after %d debits: %v", debited, err)
			}
			debited++
		}
	}
	for debited < 8 {
		if _, err := res.PreMalloc(2 * PageSize); err != nil {
			t.Fatalf("promised PreMalloc after %d debits: %v", debited, err)
		}
		debited++
	}
}
