package heapo

import (
	"errors"
	"testing"

	"repro/internal/memsim"
)

func TestQuarantineNeverReallocated(t *testing.T) {
	h, dev, _ := newHeap(t, 1<<20)

	bad, err := h.NVMalloc(2 * PageSize)
	if err != nil {
		t.Fatalf("NVMalloc: %v", err)
	}
	if err := h.Quarantine(bad); err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if got := h.QuarantinedPages(); got != 2 {
		t.Fatalf("QuarantinedPages = %d, want 2", got)
	}

	// Crash and reboot: the quarantine must be persistent and must
	// survive the pending-block reclaim recovery performs.
	dev.PowerFail(memsim.FailDropAll, 1)
	dev.Recover()
	h2, err := Attach(dev)
	if err != nil {
		t.Fatalf("Attach after crash: %v", err)
	}
	h2.ReclaimPending()
	if got := h2.QuarantinedPages(); got != 2 {
		t.Fatalf("QuarantinedPages after crash/reclaim = %d, want 2", got)
	}

	// Exhaustively allocate the heap; nothing handed out may overlap the
	// quarantined run.
	lo, hi := bad.Addr, bad.Addr+uint64(bad.Pages)*PageSize
	for {
		b, err := h2.NVMalloc(PageSize)
		if err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("NVMalloc: %v", err)
			}
			break
		}
		if b.Addr >= lo && b.Addr < hi {
			t.Fatalf("allocator handed out quarantined page at 0x%x", b.Addr)
		}
	}
	for {
		b, err := h2.NVPreMalloc(PageSize)
		if err != nil {
			break
		}
		if b.Addr >= lo && b.Addr < hi {
			t.Fatalf("NVPreMalloc handed out quarantined page at 0x%x", b.Addr)
		}
	}
	if got := h2.QuarantinedPages(); got != 2 {
		t.Fatalf("QuarantinedPages after exhaustion = %d, want 2", got)
	}
}

func TestQuarantinedBlockRejectedByFreeAndRecycle(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, err := h.NVMalloc(PageSize)
	if err != nil {
		t.Fatalf("NVMalloc: %v", err)
	}
	if err := h.Quarantine(b); err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if err := h.NVFree(b); !errors.Is(err, ErrBadState) {
		t.Fatalf("NVFree of quarantined block: err = %v, want ErrBadState", err)
	}
	if err := h.Recycle(b); !errors.Is(err, ErrBadState) {
		t.Fatalf("Recycle of quarantined block: err = %v, want ErrBadState", err)
	}
	if err := h.NVMallocSetUsedFlag(b); !errors.Is(err, ErrBadState) {
		t.Fatalf("NVMallocSetUsedFlag of quarantined block: err = %v, want ErrBadState", err)
	}
	if _, err := h.BlockAt(b.Addr); !errors.Is(err, ErrBadState) {
		t.Fatalf("BlockAt of quarantined block: err = %v, want ErrBadState", err)
	}
	// Double quarantine is also a state error: the block is already off
	// every allocation path.
	if err := h.Quarantine(b); !errors.Is(err, ErrBadState) {
		t.Fatalf("double Quarantine: err = %v, want ErrBadState", err)
	}
}

func TestQuarantinePendingBlock(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, err := h.NVPreMalloc(PageSize)
	if err != nil {
		t.Fatalf("NVPreMalloc: %v", err)
	}
	if err := h.Quarantine(b); err != nil {
		t.Fatalf("Quarantine of pending block: %v", err)
	}
	if n := h.ReclaimPending(); n != 0 {
		t.Fatalf("ReclaimPending reclaimed %d blocks, want 0 (quarantined is not pending)", n)
	}
	if got := h.QuarantinedPages(); got != 1 {
		t.Fatalf("QuarantinedPages = %d, want 1", got)
	}
}

func TestQuarantineFreeBlockRejected(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20)
	b, err := h.NVMalloc(PageSize)
	if err != nil {
		t.Fatalf("NVMalloc: %v", err)
	}
	if err := h.NVFree(b); err != nil {
		t.Fatalf("NVFree: %v", err)
	}
	if err := h.Quarantine(b); !errors.Is(err, ErrBadState) {
		t.Fatalf("Quarantine of free block: err = %v, want ErrBadState", err)
	}
}
