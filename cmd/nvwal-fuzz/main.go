// Command nvwal-fuzz is the seeded crash-consistency fuzzer for the
// NVWAL stack: randomized workloads against the full db engine on a
// simulated platform, power failures injected at operation boundaries
// and mid-operation, recovery checked against a model oracle.
//
// Usage:
//
//	nvwal-fuzz -duration 60s              # fuzz for a minute
//	nvwal-fuzz -seed 7 -steps 100         # 100 chains from seed 7
//	nvwal-fuzz -seed 7 -step 42           # replay exactly chain 42
//	nvwal-fuzz -faults -duration 60s      # media-fault chains (weak durability)
//	nvwal-fuzz -heap-pages 64 -duration 60s  # tiny-heap exhaustion chains
//	nvwal-fuzz -shards 4 -duration 60s    # sharded chains with cross-shard 2PC
//	nvwal-fuzz -mvcc -duration 60s        # overlapping-keyspace MVCC chains
//	nvwal-fuzz -repl -duration 60s        # 3-node replication chains with failover
//	nvwal-fuzz -slow -duration 60s        # gray-failure chains: everything slow, nothing fail-stop
//	nvwal-fuzz -bug -duration 10s         # prove detection of a planted bug
//
// Every violation prints a deterministic repro command and, unless
// -shrink=false, a minimized repro with the smallest round count and
// per-round transaction budget that still fire; the exit code is 1
// when any violation was found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/torture"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master seed; chain seeds derive from it")
		step      = flag.Int("step", -1, "replay exactly this chain index (-1 = run many)")
		steps     = flag.Int("steps", 0, "number of chains to run (0 = until -duration)")
		duration  = flag.Duration("duration", 0, "wall-clock fuzzing budget (0 = until -steps)")
		workers   = flag.Int("workers", 0, "force concurrent writers per chain (0 = randomized)")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON on stdout")
		bug       = flag.Bool("bug", false, "enable the planted commit-ordering bug (self-test)")
		faults    = flag.Bool("faults", false, "media-fault chains: NVRAM bit flips/stuck lines/read errors + device EIO/torn sectors (durability invariant waived)")
		shrink    = flag.Bool("shrink", true, "minimize the first violation to a smaller repro")
		maxRounds = flag.Int("max-rounds", 0, "clamp crash rounds per chain (repro/shrink)")
		maxTxns   = flag.Int("max-txns", 0, "clamp per-round txns per worker (repro/shrink)")
		heapPages = flag.Int("heap-pages", 0, "shrink the NVRAM heap to this many pages: exercises exhaustion backpressure (ErrBusy/ErrDegraded become legal outcomes)")
		shards    = flag.Int("shards", 1, "run sharded chains over this many engine shards: shard-local + cross-shard 2PC transactions, coordinator-stage crashes")
		mvcc      = flag.Bool("mvcc", false, "run overlapping-keyspace MVCC chains: concurrent sessions over one shared keyspace, first-committer-wins conflicts, seq-order oracle")
		slowMode  = flag.Bool("slow", false, "run gray-failure chains: 3-node cluster where storage, fsync and links get slow (never fail-stop), replica quarantine/resync active, liveness + convergence oracle")
		replMode  = flag.Bool("repl", false, "run replication chains: 3-node cluster serving clients through a faulty network, primary crash-failovers with epoch fencing, acked-write durability oracle")
		verbose   = flag.Bool("v", false, "log each chain's configuration")
	)
	flag.Parse()

	opts := torture.Options{
		Seed:      *seed,
		Step:      *step,
		Steps:     *steps,
		Duration:  *duration,
		Workers:   *workers,
		Bug:       *bug,
		Faults:    *faults,
		MaxRounds: *maxRounds,
		MaxTxns:   *maxTxns,
		HeapPages: *heapPages,
		Shards:    *shards,
		MVCC:      *mvcc,
		Repl:      *replMode,
		Slow:      *slowMode,
	}
	if *shards > 1 && (*bug || *faults || *heapPages > 0 || *mvcc || *replMode) {
		fmt.Fprintln(os.Stderr, "nvwal-fuzz: -shards > 1 is incompatible with -bug, -faults, -heap-pages, -mvcc and -repl")
		os.Exit(2)
	}
	if *mvcc && (*bug || *faults || *replMode) {
		fmt.Fprintln(os.Stderr, "nvwal-fuzz: -mvcc is incompatible with -bug, -faults and -repl")
		os.Exit(2)
	}
	if *replMode && (*bug || *faults || *heapPages > 0) {
		fmt.Fprintln(os.Stderr, "nvwal-fuzz: -repl is incompatible with -bug, -faults and -heap-pages")
		os.Exit(2)
	}
	if *slowMode && (*bug || *faults || *heapPages > 0 || *mvcc || *replMode || *shards > 1) {
		fmt.Fprintln(os.Stderr, "nvwal-fuzz: -slow is incompatible with every other chain mode")
		os.Exit(2)
	}
	if opts.Steps == 0 && opts.Duration == 0 && opts.Step < 0 {
		opts.Duration = 30 * time.Second
	}
	if *verbose && !*jsonOut {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep := torture.Run(opts)
	if len(rep.Violations) > 0 && *shrink && *step < 0 {
		// Replays of an explicit -step keep the chain as given; fresh
		// findings get shrunk to the smallest still-violating clamp.
		if mv, ok := torture.Minimize(opts, rep.Violations[0]); ok {
			rep.Minimized = &mv
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "nvwal-fuzz: encode:", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("nvwal-fuzz: %d chains, %d crash rounds, %d txns in %s\n",
			rep.Chains, rep.Rounds, rep.Txns, rep.Elapsed.Round(time.Millisecond))
		if opts.Faults {
			fmt.Printf("  media faults: %d damaged rounds salvaged, %d chains ended degraded read-only\n",
				rep.Damaged, rep.Degraded)
		}
		for _, v := range rep.Violations {
			fmt.Printf("VIOLATION [%s] worker=%d step=%d round=%d\n  chain: %s\n  %s\n  repro: %s\n",
				v.Kind, v.Worker, v.Step, v.Round, v.Chain, v.Detail, v.Repro)
		}
		if rep.Minimized != nil {
			fmt.Printf("minimal repro (round %d): %s\n", rep.Minimized.Round, rep.Minimized.Repro)
		}
		if len(rep.Violations) == 0 {
			fmt.Println("no oracle violations")
		}
	}
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}
