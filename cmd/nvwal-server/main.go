// Command nvwal-server serves a NVWAL-journaled key-value store over
// real TCP, as a writable primary or a WAL-shipping read replica. The
// storage stack underneath is the simulated platform (NVRAM + flash on
// a virtual clock), so state lives for the life of the process — this
// is the serving layer's development harness, exercising the exact
// wire protocol, admission control, fencing and replication machinery
// the in-process simulations test, but across real sockets.
//
// A primary and a replica on one machine:
//
//	nvwal-server -listen 127.0.0.1:7070 -replicas 127.0.0.1:7081 \
//	             -epoch 1 -ack-replicas 1 primary
//	nvwal-server -listen 127.0.0.1:7080 -repl-listen 127.0.0.1:7081 \
//	             -epoch 1 replica
//
// Clients speak the length-prefixed protocol in internal/server; see
// examples/replclient for a complete client program.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7070", "client listen address")
		replListen = flag.String("repl-listen", "", "replication listen address (replica mode)")
		replicas   = flag.String("replicas", "", "comma-separated replica replication addresses to ship to (primary mode)")
		epoch      = flag.Uint64("epoch", 1, "fencing epoch (bump on every promotion)")
		ackN       = flag.Int("ack-replicas", 0, "replica acks a commit waits for (semi-sync; 0 = async)")
		writeRate  = flag.Float64("write-rate", 0, "admission: sustained writes/sec of virtual time (0 = unlimited)")
		writeBurst = flag.Int("write-burst", 0, "admission: token bucket burst (with -write-rate)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nvwal-server [flags] primary|replica")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	mode := flag.Arg(0)

	plat, err := platform.NewTuna()
	if err != nil {
		fatal(err)
	}
	lis, err := netsim.ListenTCP(*listen)
	if err != nil {
		fatal(err)
	}

	var srv *server.Server
	switch mode {
	case "primary":
		d, err := db.Open(plat, "serve.db", db.Options{
			Journal:    db.JournalNVWAL,
			NVWAL:      core.VariantUHLSDiff(),
			Concurrent: true,
		})
		if err != nil {
			fatal(err)
		}
		if err := d.CreateTable("kv"); err != nil {
			fatal(err)
		}
		p, err := repl.NewPrimary(d, repl.PrimaryOptions{Epoch: *epoch, AckReplicas: *ackN})
		if err != nil {
			fatal(err)
		}
		for _, addr := range splitAddrs(*replicas) {
			p.AddReplica(addr, netsim.DialTCP)
			fmt.Printf("nvwal-server: shipping to replica %s\n", addr)
		}
		srv = server.New(p, server.Options{
			Epoch:      *epoch,
			WriteRate:  *writeRate,
			WriteBurst: *writeBurst,
			Clock:      plat.Clock,
			Pressure:   d.Pressure,
			Metrics:    plat.Metrics,
		})
		defer func() {
			p.Close()
			_ = d.Close()
		}()
		fmt.Printf("nvwal-server: primary (epoch %d) serving on %s\n", *epoch, *listen)

	case "replica":
		if *replListen == "" {
			fatal(fmt.Errorf("replica mode requires -repl-listen"))
		}
		r, err := repl.NewReplica(plat, "serve.db", repl.ReplicaOptions{Epoch: *epoch})
		if err != nil {
			fatal(err)
		}
		rlis, err := netsim.ListenTCP(*replListen)
		if err != nil {
			fatal(err)
		}
		go r.Serve(rlis)
		srv = server.New(r, server.Options{
			Epoch:    *epoch,
			ReadOnly: true,
			Clock:    plat.Clock,
			Metrics:  plat.Metrics,
		})
		defer r.Close()
		fmt.Printf("nvwal-server: replica serving reads on %s, following on %s\n", *listen, *replListen)

	default:
		flag.Usage()
		os.Exit(2)
	}

	go srv.Serve(lis)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("nvwal-server: shutting down")
	srv.Close()
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvwal-server:", err)
	os.Exit(1)
}
