// Command nvwal-sql is a SQL shell over the embedded database with
// NVWAL journaling on a simulated Nexus 5 — the closest thing in this
// repository to sitting at a sqlite3 prompt backed by NVRAM.
//
// Meta commands (everything else is SQL):
//
//	.crash     power-fail the machine and recover
//	.stats     metric counters and virtual time
//	.tables    list tables
//	.quit
//
// Example session:
//
//	sql> CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)
//	sql> INSERT INTO notes VALUES (1, 'hello nvram')
//	sql> .crash
//	sql> SELECT * FROM notes
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/sql"
)

func main() {
	plat, err := platform.NewNexus5()
	if err != nil {
		fatal(err)
	}
	opts := db.Options{Journal: db.JournalNVWAL, NVWAL: core.VariantUHLSDiff(), CPU: db.CPUNexus5}
	d, err := db.Open(plat, "shell.db", opts)
	if err != nil {
		fatal(err)
	}
	conn, err := sql.Open(d)
	if err != nil {
		fatal(err)
	}
	fmt.Println("nvwal-sql: SQL over NVWAL UH+LS+Diff (meta: .crash .stats .tables .quit)")

	crashSeed := int64(1)
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("sql> "); sc.Scan(); fmt.Print("sql> ") {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			switch line {
			case ".quit", ".exit":
				return
			case ".tables":
				names, err := d.Tables()
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				for _, n := range names {
					if n != "__schema" {
						fmt.Println(n)
					}
				}
			case ".stats":
				fmt.Printf("virtual time: %v\n", plat.Clock.Now())
				fmt.Print(plat.Metrics.Snapshot())
			case ".crash":
				plat.PowerFail(memsim.FailDropAll, crashSeed)
				crashSeed++
				if err := plat.Reboot(); err != nil {
					fmt.Println("error:", err)
					continue
				}
				d, err = db.Open(plat, "shell.db", opts)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				conn, err = sql.Open(d)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Println("machine crashed and recovered; uncommitted work is gone")
			default:
				fmt.Println("unknown meta command (try .quit .crash .stats .tables)")
			}
			continue
		}
		res, err := conn.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}

func printResult(r *sql.Result) {
	if r.Columns == nil {
		if r.RowsAffected > 0 {
			fmt.Printf("%d row(s) affected\n", r.RowsAffected)
		} else {
			fmt.Println("ok")
		}
		return
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for i, v := range row {
			cells[ri][i] = v.String()
			if len(cells[ri][i]) > widths[i] {
				widths[i] = len(cells[ri][i])
			}
		}
	}
	for i, c := range r.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
		_ = i
	}
	fmt.Println()
	for i := range r.Columns {
		fmt.Printf("%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Println()
	for _, row := range cells {
		for i, cell := range row {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
	fmt.Printf("(%d row(s))\n", len(r.Rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvwal-sql:", err)
	os.Exit(1)
}
