// Command nvwal-bench regenerates the paper's evaluation (§5) on the
// simulated platforms: one subcommand per table/figure, plus "all".
//
// Usage:
//
//	nvwal-bench [-txns N] table1|table2|fig5|fig6|fig7|fig8|fig9|...|concurrent|all
//
// Throughput numbers are virtual-time based and deterministic; see
// EXPERIMENTS.md for the paper-versus-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/mobibench"
)

func main() {
	txns := flag.Int("txns", 0, "transactions per measurement (0 = experiment default)")
	jsonOut := flag.String("json", "", "also write the experiment's result as JSON to this file (allocs, checkpoint, pressure and shards only)")
	gate := flag.String("gate", "", "baseline JSON to gate against (allocs only): exit non-zero when allocs/op regress above it")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nvwal-bench [-txns N] [-json FILE] [-gate FILE] table1|table2|fig5|fig6|fig7|fig8|fig9|persistency|prealloc|baselines|cschecksum|groupcommit|concurrent|checkpoint|pressure|shards|mvcc|repl|slow|allocs|all")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *txns, *jsonOut, *gate); err != nil {
		fmt.Fprintln(os.Stderr, "nvwal-bench:", err)
		os.Exit(1)
	}
}

// writeJSON dumps v indented to path, stamped with provenance meta
// (git SHA, date, Go version) so a checked-in result answers "built
// from what, when, with which toolchain" by itself. Readers that
// unmarshal into result structs ignore the extra key.
func writeJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err == nil {
		doc["meta"] = map[string]string{
			"git_sha":    gitSHA(),
			"date":       time.Now().UTC().Format(time.RFC3339),
			"go_version": runtime.Version(),
		}
		if stamped, err := json.MarshalIndent(doc, "", "  "); err == nil {
			data = stamped
		}
	} else if indented, ierr := json.MarshalIndent(v, "", "  "); ierr == nil {
		data = indented // non-object result: write unstamped
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gitSHA reports the working tree's commit, "unknown" outside a repo.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// gateAllocs compares the measured allocation audit against a recorded
// baseline and fails on regression. Allocs/op is near-deterministic for
// a fixed op count, but map-growth boundaries and pool warmup shift it
// by a fraction; the gate allows 10% + 2 allocs of slack before calling
// a regression, and ignores latency (wall-clock, machine-dependent).
func gateAllocs(r *experiments.CommitAllocsResult, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading allocs baseline: %w", err)
	}
	var base experiments.CommitAllocsResult
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing allocs baseline %s: %w", path, err)
	}
	var failures []string
	for _, want := range base.Rows {
		got := r.Row(want.Path)
		if got == nil {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", want.Path))
			continue
		}
		if limit := want.AllocsPerOp*1.10 + 2; got.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.2f allocs/op exceeds baseline %.2f (limit %.2f)",
				want.Path, got.AllocsPerOp, want.AllocsPerOp, limit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocs/op regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func run(name string, txns int, jsonOut, gate string) error {
	out := os.Stdout
	switch name {
	case "table1":
		r, err := experiments.Table1(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "table2":
		r, err := experiments.Table2(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "fig5":
		r, err := experiments.Figure5(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "fig6":
		r, err := experiments.Figure5(txns)
		if err != nil {
			return err
		}
		r.WriteFigure6(out)
	case "fig7":
		for _, op := range []mobibench.Op{mobibench.Insert, mobibench.Update, mobibench.Delete} {
			r, err := experiments.Figure7(op, txns)
			if err != nil {
				return err
			}
			r.Print(out)
			fmt.Fprintln(out)
		}
	case "fig8":
		r, err := experiments.Figure8()
		if err != nil {
			return err
		}
		r.Print(out)
	case "fig9":
		r, err := experiments.Figure9(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "persistency":
		r, err := experiments.Persistency(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "prealloc":
		r, err := experiments.Prealloc(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "baselines":
		r, err := experiments.Baselines(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "cschecksum":
		r, err := experiments.ChecksumStudy(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "groupcommit":
		r, err := experiments.GroupCommit(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "concurrent":
		r, err := experiments.Concurrent(txns)
		if err != nil {
			return err
		}
		r.Print(out)
	case "checkpoint":
		r, err := experiments.CheckpointStall(txns)
		if err != nil {
			return err
		}
		r.Print(out)
		if jsonOut != "" {
			if err := writeJSON(jsonOut, r); err != nil {
				return err
			}
		}
	case "pressure":
		r, err := experiments.Pressure(txns)
		if err != nil {
			return err
		}
		r.Print(out)
		if jsonOut != "" {
			if err := writeJSON(jsonOut, r); err != nil {
				return err
			}
		}
	case "shards":
		r, err := experiments.Shards(txns)
		if err != nil {
			return err
		}
		r.Print(out)
		if jsonOut != "" {
			if err := writeJSON(jsonOut, r); err != nil {
				return err
			}
		}
	case "mvcc":
		r, err := experiments.MVCC(txns)
		if err != nil {
			return err
		}
		r.Print(out)
		if jsonOut != "" {
			if err := writeJSON(jsonOut, r); err != nil {
				return err
			}
		}
	case "repl":
		r, err := experiments.Repl(txns)
		if err != nil {
			return err
		}
		r.Print(out)
		if jsonOut != "" {
			if err := writeJSON(jsonOut, r); err != nil {
				return err
			}
		}
	case "slow":
		r, err := experiments.Slow(txns)
		if err != nil {
			return err
		}
		r.Print(out)
		if jsonOut != "" {
			if err := writeJSON(jsonOut, r); err != nil {
				return err
			}
		}
	case "allocs":
		r, err := experiments.CommitAllocs(txns)
		if err != nil {
			return err
		}
		r.Print(out)
		if jsonOut != "" {
			if err := writeJSON(jsonOut, r); err != nil {
				return err
			}
		}
		if gate != "" {
			if err := gateAllocs(r, gate); err != nil {
				return err
			}
			fmt.Fprintf(out, "allocs/op gate passed against %s\n", gate)
		}
	case "all":
		for _, sub := range []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "persistency", "prealloc", "baselines", "cschecksum", "groupcommit", "concurrent", "checkpoint", "pressure", "shards", "mvcc", "repl", "slow", "allocs"} {
			fmt.Fprintf(out, "==== %s ====\n", sub)
			if err := run(sub, txns, jsonOut, gate); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
