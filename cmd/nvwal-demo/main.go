// Command nvwal-demo is an interactive shell over the embedded database
// with NVWAL journaling on a simulated Nexus 5: a hands-on way to poke
// at transactions, checkpointing, crash recovery and the metrics the
// paper measures.
//
// Commands:
//
//	create <table>              create a table
//	put <table> <key> <value>   insert/replace in an auto-commit txn
//	get <table> <key>           read a record
//	del <table> <key>           delete a record
//	scan <table>                list all records
//	begin | commit | rollback   explicit transaction control
//	checkpoint                  flush the NVRAM log into the db file
//	crash                       power-fail the machine and recover
//	stats                       show metric counters and virtual time
//	quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/platform"
)

func main() {
	plat, err := platform.NewNexus5()
	if err != nil {
		fatal(err)
	}
	opts := db.Options{Journal: db.JournalNVWAL, NVWAL: core.VariantUHLSDiff(), CPU: db.CPUNexus5}
	d, err := db.Open(plat, "demo.db", opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println("nvwal-demo: NVWAL UH+LS+Diff on a simulated Nexus 5 (type 'help')")

	var tx *db.Tx
	crashSeed := int64(1)
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		var err error
		switch cmd {
		case "help":
			fmt.Println("create put get del scan begin commit rollback checkpoint crash stats quit")
		case "create":
			if len(args) != 1 {
				err = fmt.Errorf("usage: create <table>")
				break
			}
			err = d.CreateTable(args[0])
		case "put":
			if len(args) != 3 {
				err = fmt.Errorf("usage: put <table> <key> <value>")
				break
			}
			err = inTxn(d, &tx, func(t *db.Tx) error {
				return t.Insert(args[0], []byte(args[1]), []byte(args[2]))
			})
		case "get":
			if len(args) != 2 {
				err = fmt.Errorf("usage: get <table> <key>")
				break
			}
			var v []byte
			var ok bool
			if tx != nil {
				v, ok, err = tx.Get(args[0], []byte(args[1]))
			} else {
				v, ok, err = d.Get(args[0], []byte(args[1]))
			}
			if err == nil {
				if ok {
					fmt.Printf("%s\n", v)
				} else {
					fmt.Println("(not found)")
				}
			}
		case "del":
			if len(args) != 2 {
				err = fmt.Errorf("usage: del <table> <key>")
				break
			}
			err = inTxn(d, &tx, func(t *db.Tx) error {
				_, e := t.Delete(args[0], []byte(args[1]))
				return e
			})
		case "scan":
			if len(args) != 1 {
				err = fmt.Errorf("usage: scan <table>")
				break
			}
			n := 0
			err = d.Scan(args[0], func(k, v []byte) bool {
				fmt.Printf("  %s = %s\n", k, v)
				n++
				return true
			})
			fmt.Printf("(%d records)\n", n)
		case "begin":
			if tx != nil {
				err = fmt.Errorf("transaction already open")
				break
			}
			tx, err = d.Begin()
		case "commit":
			if tx == nil {
				err = fmt.Errorf("no open transaction")
				break
			}
			err = tx.Commit()
			tx = nil
		case "rollback":
			if tx == nil {
				err = fmt.Errorf("no open transaction")
				break
			}
			tx.Rollback()
			tx = nil
		case "checkpoint":
			err = d.Checkpoint()
		case "crash":
			if tx != nil {
				tx = nil // the open transaction dies with the machine
			}
			plat.PowerFail(memsim.FailDropAll, crashSeed)
			crashSeed++
			if err = plat.Reboot(); err != nil {
				break
			}
			d, err = db.Open(plat, "demo.db", opts)
			if err == nil {
				fmt.Println("machine crashed and recovered; uncommitted work is gone")
			}
		case "stats":
			fmt.Printf("virtual time: %v\n", plat.Clock.Now())
			fmt.Print(plat.Metrics.Snapshot())
		case "quit", "exit":
			return
		default:
			err = fmt.Errorf("unknown command %q (try 'help')", cmd)
		}
		if err != nil {
			fmt.Println("error:", err)
		}
	}
}

// inTxn runs fn inside the open transaction, or an auto-commit one.
func inTxn(d *db.DB, tx **db.Tx, fn func(*db.Tx) error) error {
	if *tx != nil {
		return fn(*tx)
	}
	t, err := d.Begin()
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		t.Rollback()
		return err
	}
	return t.Commit()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvwal-demo:", err)
	os.Exit(1)
}
