// Command nvwal-crash drives the §4.3 failure-atomicity argument
// end to end: it injects a simulated power failure at every step of
// NVWAL's commit protocol (Algorithm 1) and of checkpointing, under
// conservative and adversarial cache-line survival, then recovers and
// verifies that the database holds exactly the committed transactions —
// the second transaction appears entirely or not at all.
//
// With -shards > 1 the matrix instead targets the cross-shard commit
// protocol: a two-shard transaction is crashed at every Algorithm 1
// step of the second participant's prepare (the decision never
// persists, so it must vanish from both shards) and at each
// coordinator stage boundary (before the decide record it vanishes
// everywhere, after it lands everywhere).
//
// Usage:
//
//	nvwal-crash [-seeds N] [-variant UH+LS+Diff|LS|E|...] [-shards N]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/shard"
)

func main() {
	seeds := flag.Int("seeds", 3, "adversarial seeds per case")
	variant := flag.String("variant", "", "single variant label (default: all)")
	shards := flag.Int("shards", 1, "run the cross-shard 2PC crash matrix over this many shards instead of the single-engine one")
	flag.Parse()

	if *shards > 1 {
		os.Exit(runShardedMatrix(*shards, *seeds, *variant))
	}

	variants := append(core.Figure7Variants(), core.NamedConfig{Name: "NVWAL E", Cfg: core.VariantE()})
	pass, fail := 0, 0
	for _, v := range variants {
		if *variant != "" && v.Cfg.Label() != *variant {
			continue
		}
		for _, step := range append(core.WriteSteps(), core.CheckpointSteps()...) {
			for _, pol := range []struct {
				name   string
				policy memsim.FailPolicy
			}{{"dropall", memsim.FailDropAll}, {"adversarial", memsim.FailAdversarial}} {
				for seed := int64(1); seed <= int64(*seeds); seed++ {
					err := runCase(v.Cfg, step, pol.policy, seed)
					label := fmt.Sprintf("%-12s %-22s %-12s seed=%d", v.Cfg.Label(), step, pol.name, seed)
					if err != nil {
						fail++
						fmt.Printf("FAIL %s: %v\n", label, err)
					} else {
						pass++
						fmt.Printf("ok   %s\n", label)
					}
				}
			}
		}
	}
	fmt.Printf("\n%d cases passed, %d failed\n", pass, fail)
	if fail > 0 {
		os.Exit(1)
	}
}

type crashSignal struct{}

// runCase commits one transaction, crashes a second one at the given
// step, recovers the machine, and checks atomicity.
func runCase(cfg core.Config, step string, policy memsim.FailPolicy, seed int64) error {
	plat, err := platform.NewTuna()
	if err != nil {
		return err
	}
	opts := db.Options{Journal: db.JournalNVWAL, NVWAL: cfg, CheckpointLimit: -1}
	d, err := db.Open(plat, "crash.db", opts)
	if err != nil {
		return err
	}
	if err := d.CreateTable("t"); err != nil {
		return err
	}

	// Transaction 1 (must survive, except under the checksum scheme).
	t1 := map[string][]byte{"alpha": bytes.Repeat([]byte{0xA1}, 100), "beta": bytes.Repeat([]byte{0xA2}, 100)}
	if err := commit(d, t1); err != nil {
		return err
	}

	nv, ok := d.Journal().(*core.NVWAL)
	if !ok {
		return fmt.Errorf("journal is not NVWAL")
	}

	// Transaction 2 (or a checkpoint), crashed at the step.
	t2 := map[string][]byte{
		"alpha": bytes.Repeat([]byte{0xB1}, 100),
		"gamma": bytes.Repeat([]byte{0xB3}, 100),
	}
	crashed := false
	func() {
		nv.SetCrashHook(func(s string) {
			if s == step {
				crashed = true
				panic(crashSignal{})
			}
		})
		defer func() {
			nv.SetCrashHook(nil)
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); !ok {
					panic(r)
				}
			}
		}()
		isCkpt := false
		for _, s := range core.CheckpointSteps() {
			if s == step {
				isCkpt = true
			}
		}
		if isCkpt {
			_ = d.Checkpoint()
		} else {
			_ = commit(d, t2)
		}
	}()
	_ = crashed

	// Power failure + reboot.
	plat.PowerFail(policy, seed)
	if err := plat.Reboot(); err != nil {
		return err
	}
	d2, err := db.Open(plat, "crash.db", opts)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	if !d2.HasTable("t") {
		if cfg.Sync == core.SyncChecksum {
			// Asynchronous commit never flushed the log entries, so a
			// crash may legally lose everything back to the last
			// checkpoint — detected, not corrupted (§4.2).
			return nil
		}
		return fmt.Errorf("table lost after recovery")
	}

	// Atomicity: either the full t2 state or the full t1 state.
	gammaV, gammaOK, err := d2.Get("t", []byte("gamma"))
	if err != nil {
		return err
	}
	want := t1
	if gammaOK {
		if !bytes.Equal(gammaV, t2["gamma"]) {
			return fmt.Errorf("gamma corrupted")
		}
		want = map[string][]byte{"alpha": t2["alpha"], "beta": t1["beta"], "gamma": t2["gamma"]}
	}
	for k, v := range want {
		got, ok, err := d2.Get("t", []byte(k))
		if err != nil {
			return err
		}
		if cfg.Sync == core.SyncChecksum {
			// Asynchronous commit trades durability for speed; torn
			// transactions are detected and dropped, so absence is
			// legal — corruption is not.
			if ok && !bytes.Equal(got, v) && !bytes.Equal(got, t2[k]) {
				return fmt.Errorf("%s corrupted under checksum scheme", k)
			}
			continue
		}
		if !ok || !bytes.Equal(got, v) {
			return fmt.Errorf("%s lost or stale after recovery", k)
		}
	}
	// The database must remain fully usable.
	if err := commit(d2, map[string][]byte{"post": []byte("recovery")}); err != nil {
		return fmt.Errorf("post-recovery commit: %w", err)
	}
	return d2.Check()
}

// runShardedMatrix is the -shards > 1 mode: every write step of the
// second participant's prepare plus every coordinator stage boundary,
// under both survival policies. Exit code 1 on any failure.
func runShardedMatrix(nshards, seeds int, variant string) int {
	cfg := core.VariantUHLSDiff()
	name := "UH+LS+Diff"
	if variant != "" {
		found := false
		for _, v := range append(core.Figure7Variants(), core.NamedConfig{Name: "NVWAL E", Cfg: core.VariantE()}) {
			if v.Cfg.Label() == variant {
				cfg, name, found = v.Cfg, v.Cfg.Label(), true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "nvwal-crash: unknown variant %q\n", variant)
			return 2
		}
	}
	policies := []struct {
		name   string
		policy memsim.FailPolicy
	}{{"dropall", memsim.FailDropAll}, {"adversarial", memsim.FailAdversarial}}
	stages := []struct {
		name  string
		stage shard.Stage
		want  bool // transaction present on both shards after recovery
	}{
		{"after-prepare", shard.StageAfterPrepare, false},
		{"after-decide", shard.StageAfterDecide, true},
		{"after-complete", shard.StageAfterComplete, true},
	}
	pass, fail := 0, 0
	report := func(label string, err error) {
		if err != nil {
			fail++
			fmt.Printf("FAIL %s: %v\n", label, err)
		} else {
			pass++
			fmt.Printf("ok   %s\n", label)
		}
	}
	for _, pol := range policies {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			for _, step := range core.WriteSteps() {
				err := runShardedCase(cfg, nshards, step, nil, pol.policy, seed)
				report(fmt.Sprintf("%-12s shards=%d prepare@%-22s %-12s seed=%d", name, nshards, step, pol.name, seed), err)
			}
			for _, st := range stages {
				err := runShardedCase(cfg, nshards, "", &st.want, pol.policy, seed, st.stage)
				report(fmt.Sprintf("%-12s shards=%d %-30s %-12s seed=%d", name, nshards, st.name, pol.name, seed), err)
			}
		}
	}
	fmt.Printf("\n%d cases passed, %d failed\n", pass, fail)
	if fail > 0 {
		return 1
	}
	return 0
}

// shardedKey fabricates a key routed to the wanted shard.
func shardedKey(s *shard.DB, sh int, stem string) []byte {
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("%s-%d", stem, i))
		if s.ShardOf(k) == sh {
			return k
		}
	}
}

// runShardedCase commits one cross-shard transaction, crashes a second
// one — at a write step of participant 1's prepare (step != "") or at a
// coordinator stage (stage set) — recovers, and checks all-or-nothing
// across both shards. want, when non-nil, pins the required outcome;
// for participant-prepare crashes the decision never persisted, so the
// transaction must vanish.
func runShardedCase(cfg core.Config, nshards int, step string, want *bool, policy memsim.FailPolicy, seed int64, stage ...shard.Stage) error {
	plat, err := shard.NewShared(platform.Config{
		NVRAM: nvram.Config{
			Size:              32 << 20,
			CacheLineSize:     64,
			NVRAMWriteLatency: 500 * time.Nanosecond,
		},
	}, nshards)
	if err != nil {
		return err
	}
	opts := shard.Options{DB: db.Options{NVWAL: cfg, CheckpointLimit: -1}}
	s, err := shard.Open(plat, "crash.db", opts)
	if err != nil {
		return err
	}
	if err := s.CreateTable("t"); err != nil {
		return err
	}
	baseA, baseB := shardedKey(s, 0, "base-a"), shardedKey(s, 1, "base-b")

	// Transaction 1: a cross-shard commit that must survive.
	if err := s.Apply([]shard.Op{
		{Table: "t", Key: baseA, Value: bytes.Repeat([]byte{0xA1}, 100)},
		{Table: "t", Key: baseB, Value: bytes.Repeat([]byte{0xA2}, 100)},
	}); err != nil {
		return err
	}

	// Transaction 2, crashed mid-protocol. Its volume exceeds a log
	// block, so the prepare exercises the block-allocation steps too.
	var ops []shard.Op
	t2 := map[string]byte{}
	for i := 0; i < 4; i++ {
		a := shardedKey(s, 0, fmt.Sprintf("a%d", i))
		b := shardedKey(s, 1, fmt.Sprintf("b%d", i))
		t2[string(a)], t2[string(b)] = 0xB1, 0xB3
		ops = append(ops,
			shard.Op{Table: "t", Key: a, Value: bytes.Repeat([]byte{0xB1}, 2048)},
			shard.Op{Table: "t", Key: b, Value: bytes.Repeat([]byte{0xB3}, 2048)})
	}
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		if step != "" {
			// Participants prepare in shard order, so the hook on shard
			// 1's journal fires inside the second prepare: shard 0 is
			// already prepared, the decide record never persists.
			nv, ok := s.Shard(1).Journal().(*core.NVWAL)
			if !ok {
				panic("journal is not NVWAL")
			}
			nv.SetCrashHook(func(st string) {
				if st == step {
					panic(crashSignal{})
				}
			})
			defer nv.SetCrashHook(nil)
		} else {
			s.SetCommitHook(func(st shard.Stage, gtx uint64) {
				if st == stage[0] {
					panic(crashSignal{})
				}
			})
			defer s.SetCommitHook(nil)
		}
		_ = s.Apply(ops)
	}()
	if !crashed {
		return fmt.Errorf("crash hook never fired")
	}

	s.Abandon()
	plat.PowerFail(policy, seed)
	if err := plat.Reboot(); err != nil {
		return err
	}
	s2, err := shard.Open(plat, "crash.db", opts)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	if !s2.HasTable("t") {
		return fmt.Errorf("table lost after recovery")
	}

	// All-or-nothing across the shards, with the outcome the protocol
	// requires: absent unless the decide record persisted.
	expect := false
	if want != nil {
		expect = *want
	}
	present, absent := 0, 0
	for k, fill := range t2 {
		got, ok, err := s2.Get("t", []byte(k))
		if err != nil {
			return err
		}
		if ok {
			present++
			if !bytes.Equal(got, bytes.Repeat([]byte{fill}, 2048)) {
				return fmt.Errorf("surviving transaction corrupted at %q", k)
			}
		} else {
			absent++
		}
	}
	if present != 0 && absent != 0 {
		return fmt.Errorf("cross-shard transaction torn: %d keys present, %d absent", present, absent)
	}
	if (present != 0) != expect {
		return fmt.Errorf("transaction present=%v, protocol requires %v", present != 0, expect)
	}
	for k, fill := range map[string]byte{string(baseA): 0xA1, string(baseB): 0xA2} {
		got, ok, err := s2.Get("t", []byte(k))
		if err != nil {
			return err
		}
		if !ok || !bytes.Equal(got, bytes.Repeat([]byte{fill}, 100)) {
			return fmt.Errorf("baseline key %q lost or stale after recovery", k)
		}
	}
	// The recovered system keeps working, including another 2PC.
	if err := s2.Apply([]shard.Op{
		{Table: "t", Key: shardedKey(s2, 0, "post-a"), Value: []byte("recovery")},
		{Table: "t", Key: shardedKey(s2, 1, "post-b"), Value: []byte("recovery")},
	}); err != nil {
		return fmt.Errorf("post-recovery 2PC: %w", err)
	}
	return s2.Check()
}

func commit(d *db.DB, kv map[string][]byte) error {
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	for k, v := range kv {
		if err := tx.Insert("t", []byte(k), v); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}
