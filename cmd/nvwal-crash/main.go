// Command nvwal-crash drives the §4.3 failure-atomicity argument
// end to end: it injects a simulated power failure at every step of
// NVWAL's commit protocol (Algorithm 1) and of checkpointing, under
// conservative and adversarial cache-line survival, then recovers and
// verifies that the database holds exactly the committed transactions —
// the second transaction appears entirely or not at all.
//
// Usage:
//
//	nvwal-crash [-seeds N] [-variant UH+LS+Diff|LS|E|...]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/platform"
)

func main() {
	seeds := flag.Int("seeds", 3, "adversarial seeds per case")
	variant := flag.String("variant", "", "single variant label (default: all)")
	flag.Parse()

	variants := append(core.Figure7Variants(), core.NamedConfig{Name: "NVWAL E", Cfg: core.VariantE()})
	pass, fail := 0, 0
	for _, v := range variants {
		if *variant != "" && v.Cfg.Label() != *variant {
			continue
		}
		for _, step := range append(core.WriteSteps(), core.CheckpointSteps()...) {
			for _, pol := range []struct {
				name   string
				policy memsim.FailPolicy
			}{{"dropall", memsim.FailDropAll}, {"adversarial", memsim.FailAdversarial}} {
				for seed := int64(1); seed <= int64(*seeds); seed++ {
					err := runCase(v.Cfg, step, pol.policy, seed)
					label := fmt.Sprintf("%-12s %-22s %-12s seed=%d", v.Cfg.Label(), step, pol.name, seed)
					if err != nil {
						fail++
						fmt.Printf("FAIL %s: %v\n", label, err)
					} else {
						pass++
						fmt.Printf("ok   %s\n", label)
					}
				}
			}
		}
	}
	fmt.Printf("\n%d cases passed, %d failed\n", pass, fail)
	if fail > 0 {
		os.Exit(1)
	}
}

type crashSignal struct{}

// runCase commits one transaction, crashes a second one at the given
// step, recovers the machine, and checks atomicity.
func runCase(cfg core.Config, step string, policy memsim.FailPolicy, seed int64) error {
	plat, err := platform.NewTuna()
	if err != nil {
		return err
	}
	opts := db.Options{Journal: db.JournalNVWAL, NVWAL: cfg, CheckpointLimit: -1}
	d, err := db.Open(plat, "crash.db", opts)
	if err != nil {
		return err
	}
	if err := d.CreateTable("t"); err != nil {
		return err
	}

	// Transaction 1 (must survive, except under the checksum scheme).
	t1 := map[string][]byte{"alpha": bytes.Repeat([]byte{0xA1}, 100), "beta": bytes.Repeat([]byte{0xA2}, 100)}
	if err := commit(d, t1); err != nil {
		return err
	}

	nv, ok := d.Journal().(*core.NVWAL)
	if !ok {
		return fmt.Errorf("journal is not NVWAL")
	}

	// Transaction 2 (or a checkpoint), crashed at the step.
	t2 := map[string][]byte{
		"alpha": bytes.Repeat([]byte{0xB1}, 100),
		"gamma": bytes.Repeat([]byte{0xB3}, 100),
	}
	crashed := false
	func() {
		nv.SetCrashHook(func(s string) {
			if s == step {
				crashed = true
				panic(crashSignal{})
			}
		})
		defer func() {
			nv.SetCrashHook(nil)
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); !ok {
					panic(r)
				}
			}
		}()
		isCkpt := false
		for _, s := range core.CheckpointSteps() {
			if s == step {
				isCkpt = true
			}
		}
		if isCkpt {
			_ = d.Checkpoint()
		} else {
			_ = commit(d, t2)
		}
	}()
	_ = crashed

	// Power failure + reboot.
	plat.PowerFail(policy, seed)
	if err := plat.Reboot(); err != nil {
		return err
	}
	d2, err := db.Open(plat, "crash.db", opts)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	if !d2.HasTable("t") {
		if cfg.Sync == core.SyncChecksum {
			// Asynchronous commit never flushed the log entries, so a
			// crash may legally lose everything back to the last
			// checkpoint — detected, not corrupted (§4.2).
			return nil
		}
		return fmt.Errorf("table lost after recovery")
	}

	// Atomicity: either the full t2 state or the full t1 state.
	gammaV, gammaOK, err := d2.Get("t", []byte("gamma"))
	if err != nil {
		return err
	}
	want := t1
	if gammaOK {
		if !bytes.Equal(gammaV, t2["gamma"]) {
			return fmt.Errorf("gamma corrupted")
		}
		want = map[string][]byte{"alpha": t2["alpha"], "beta": t1["beta"], "gamma": t2["gamma"]}
	}
	for k, v := range want {
		got, ok, err := d2.Get("t", []byte(k))
		if err != nil {
			return err
		}
		if cfg.Sync == core.SyncChecksum {
			// Asynchronous commit trades durability for speed; torn
			// transactions are detected and dropped, so absence is
			// legal — corruption is not.
			if ok && !bytes.Equal(got, v) && !bytes.Equal(got, t2[k]) {
				return fmt.Errorf("%s corrupted under checksum scheme", k)
			}
			continue
		}
		if !ok || !bytes.Equal(got, v) {
			return fmt.Errorf("%s lost or stale after recovery", k)
		}
	}
	// The database must remain fully usable.
	if err := commit(d2, map[string][]byte{"post": []byte("recovery")}); err != nil {
		return fmt.Errorf("post-recovery commit: %w", err)
	}
	return d2.Check()
}

func commit(d *db.DB, kv map[string][]byte) error {
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	for k, v := range kv {
		if err := tx.Insert("t", []byte(k), v); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}
